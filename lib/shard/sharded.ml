module Event = Ft_trace.Event
module Detector = Ft_core.Detector
module Engine = Ft_core.Engine
module Sampler = Ft_core.Sampler
module Metrics = Ft_core.Metrics
module Race = Ft_core.Race
module Snap = Ft_core.Snap
module Fault = Ft_fault.Fault

type msg =
  | Ev of int * Event.t
  | Mark of Event.tid  (* replicate a pending-bit transition: note_sampled *)
  | Stop

exception Shard_failed of string

(* One engine instance behind closures, so the router can hold K of them
   without knowing the engine's state type. *)
type inst = {
  i_handle : int -> Event.t -> unit;
  i_note : Event.tid -> unit;
  i_result : unit -> Detector.result;
  i_snapshot : unit -> Snap.t;
}

let fresh_inst (module D : Detector.S) config =
  let d = D.create config in
  {
    i_handle = (fun i e -> D.handle d i e);
    i_note = (fun t -> D.note_sampled d t);
    i_result = (fun () -> D.result d);
    i_snapshot = (fun () -> D.snapshot d);
  }

let restored_inst (module D : Detector.S) config snap =
  let d = D.restore config snap in
  {
    i_handle = (fun i e -> D.handle d i e);
    i_note = (fun t -> D.note_sampled d t);
    i_result = (fun () -> D.result d);
    i_snapshot = (fun () -> D.snapshot d);
  }

(* Per-shard control block.  The router domain owns every mutable field
   except [fail] and [snap_slot], which the worker publishes through
   atomics: [fail] when it dies or its handler raises, [snap_slot] with a
   periodic (message-count, snapshot) pair that bounds how far a recovery
   has to replay. *)
type shard = {
  ring : msg Spsc.t;
  mutable inst : inst;
  mutable domain : unit Domain.t option;
  fail : (string * bool) option Atomic.t;  (* reason, domain exited abruptly *)
  snap_slot : (int * Snap.t) option Atomic.t;
  mutable pushed : int;  (* messages ever routed to this shard (next seq) *)
  mutable backlog : msg array;  (* supervised only: messages [bbase, pushed) *)
  mutable blen : int;
  mutable bbase : int;
  mutable restore_count : int;  (* messages covered by [restore_snap] *)
  mutable restore_snap : Snap.t option;
  mutable restarts : int;
  mutable dead : string option;  (* restart budget exhausted: fail-fast *)
}

type t = {
  engine : Engine.id;
  packed : (module Detector.S);
  config : Detector.config;
  k : int;
  supervise : bool;
  max_restarts : int;
  snapshot_every : int;
  shards : shard array;
  baseline : inst;  (* same engine, fed only the broadcast sync stream *)
  sampler_inst : Sampler.instance;
  pending : bool array;  (* mirror of every instance's pending bit, per thread *)
  routed : int array;  (* events pushed per shard ring; router-domain only *)
  mutable nevents : int;
  mutable stopped : bool;
}

let ring_capacity = 1024
let default_max_restarts = 8
let default_snapshot_every = 2048

(* Deterministic location → shard map (splitmix-style finalizer): stable
   across runs and platforms, so per-shard checkpoints stay valid. *)
let owner_of ~shards x =
  if shards = 1 then 0
  else begin
    let h = x * 0x9E3779B1 in
    let h = (h lxor (h lsr 16)) * 0x85EBCA6B in
    ((h lxor (h lsr 13)) land max_int) mod shards
  end

(* Workers process their ring until [Stop].  A handler exception is recorded
   once (first failure wins) and the worker keeps draining without
   processing, so the router can never deadlock pushing into a dead shard —
   except for an injected [Crash_domain], which abandons the ring mid-message
   exactly like a genuinely dead domain would; the supervisor drains it after
   the join.  [start] is the global per-shard message count already applied to
   [inst] when this worker was spawned (0 for a fresh shard, the restore
   point after a recovery), so published snapshot counts stay globally
   consistent across restarts. *)
let worker sh inst ~supervise ~snapshot_every ~start idx () =
  let ring = sh.ring in
  let failed = ref false in
  let crashed = ref false in
  let processed = ref start in
  let rec loop spins =
    if not !crashed then
      match Spsc.peek ring with
      | None ->
        Domain.cpu_relax ();
        (* an idle shard (e.g. a serve daemon between batches) must not pin a
           core: back off to short sleeps after a burst of empty polls *)
        if spins > 4096 then Unix.sleepf 0.0002;
        loop (if spins > 4096 then spins else spins + 1)
      | Some Stop -> Spsc.advance ring
      | Some msg ->
        if not !failed then begin
          try
            Fault.point ~lane:idx
              ~supports:[ Fault.Exn; Fault.Crash_domain; Fault.Delay ] "shard.step";
            (match msg with
            | Ev (i, e) -> inst.i_handle i e
            | Mark th -> inst.i_note th
            | Stop -> assert false);
            incr processed;
            if supervise && snapshot_every > 0 && !processed mod snapshot_every = 0
            then Atomic.set sh.snap_slot (Some (!processed, inst.i_snapshot ()))
          with
          | Fault.Injected ({ Fault.kind = Fault.Crash_domain; _ } as inc) ->
            crashed := true;
            Atomic.set sh.fail (Some (Fault.describe inc, true))
          | exn ->
            failed := true;
            let bt = Printexc.get_backtrace () in
            Atomic.set sh.fail (Some (Printexc.to_string exn ^ "\n" ^ bt, false))
        end;
        if not !crashed then begin
          Spsc.advance ring;
          loop 0
        end
  in
  loop 0

let spawn_shard t s =
  let sh = t.shards.(s) in
  let inst = sh.inst in
  sh.domain <-
    Some
      (Domain.spawn
         (worker sh inst ~supervise:t.supervise ~snapshot_every:t.snapshot_every
            ~start:sh.restore_count s))

(* --- router-side backlog (supervised mode only) -------------------------- *)

let backlog_push sh m =
  if sh.blen = Array.length sh.backlog then begin
    let a = Array.make (Stdlib.max 64 (2 * Array.length sh.backlog)) Stop in
    Array.blit sh.backlog 0 a 0 sh.blen;
    sh.backlog <- a
  end;
  sh.backlog.(sh.blen) <- m;
  sh.blen <- sh.blen + 1

let backlog_get sh seq = sh.backlog.(seq - sh.bbase)

(* Pick up the worker's latest published snapshot and drop the backlog
   prefix it covers — the supervisor only ever replays from the newest
   restore point, so older messages can go. *)
let adopt_snapshot sh =
  match Atomic.get sh.snap_slot with
  | Some (c, snap) when c > sh.restore_count ->
    sh.restore_count <- c;
    sh.restore_snap <- Some snap;
    let drop = c - sh.bbase in
    if drop > 0 then begin
      let rest = sh.blen - drop in
      Array.blit sh.backlog drop sh.backlog 0 rest;
      sh.blen <- rest;
      sh.bbase <- c
    end
  | _ -> ()

let first_line s = match String.index_opt s '\n' with
  | None -> s
  | Some i -> String.sub s 0 i

(* Join a failed worker and leave its ring empty.  An [Exn]-failed worker is
   still draining, so a [Stop] reaches it; a crashed one abandoned the ring
   and the router sweeps up after the join. *)
let reap t s =
  let sh = t.shards.(s) in
  (match sh.domain with
  | None -> ()
  | Some d ->
    let exited = match Atomic.get sh.fail with Some (_, e) -> e | None -> false in
    if not exited then Spsc.push sh.ring Stop;
    Domain.join d;
    sh.domain <- None);
  while not (Spsc.is_empty sh.ring) do
    Spsc.advance sh.ring
  done

(* Self-healing: rebuild a failed shard from its last adopted snapshot and
   replay the backlog suffix.  Restores are exact — the replayed engine
   reaches precisely the state an unfaulted run would have — so verdicts
   are unaffected (the REPORT oracle of the chaos suite).  Bounded by
   [max_restarts] strikes per shard, after which the shard is marked dead
   and every subsequent operation fails fast with the diagnostic. *)
let rec heal t s =
  let sh = t.shards.(s) in
  match Atomic.get sh.fail with
  | None -> ()
  | Some (reason, _) ->
    if not t.supervise then begin
      reap t s;
      failwith (Printf.sprintf "Sharded: shard %d failed: %s" s reason)
    end;
    sh.restarts <- sh.restarts + 1;
    reap t s;
    Atomic.set sh.fail None;
    if sh.restarts > t.max_restarts then begin
      let diag =
        Printf.sprintf
          "shard %d exceeded its restart budget (%d strikes): last failure: %s" s
          t.max_restarts (first_line reason)
      in
      sh.dead <- Some diag;
      raise (Shard_failed diag)
    end;
    adopt_snapshot sh;
    (match sh.restore_snap with
    | Some snap -> sh.inst <- restored_inst t.packed t.config snap
    | None -> sh.inst <- fresh_inst t.packed t.config);
    Printf.eprintf
      "[supervisor] shard %d failed (%s); restart %d/%d, restored at message %d, \
       replaying %d\n%!"
      s (first_line reason) sh.restarts t.max_restarts sh.restore_count
      (sh.pushed - sh.restore_count);
    spawn_shard t s;
    let seq = ref sh.restore_count in
    let live = ref true in
    while !live && !seq < sh.pushed do
      if Spsc.try_push sh.ring (backlog_get sh !seq) then incr seq
      else if Atomic.get sh.fail <> None then live := false
      else Domain.cpu_relax ()
    done;
    if Atomic.get sh.fail <> None then heal t s

let check_dead sh =
  match sh.dead with Some diag -> raise (Shard_failed diag) | None -> ()

(* Route one message to shard [s].  Failure-aware: a supervised push heals
   a failed shard first (the healed replay delivers [m], which is already
   in the backlog); an unsupervised push surfaces the failure only when the
   ring is full (a draining worker keeps it empty), preserving the old
   fail-at-flush behavior. *)
let push_msg t s m =
  let sh = t.shards.(s) in
  check_dead sh;
  if t.supervise then begin
    adopt_snapshot sh;
    backlog_push sh m
  end;
  sh.pushed <- sh.pushed + 1;
  Fault.point ~lane:s ~supports:[ Fault.Delay ] "spsc.push";
  if t.supervise && Atomic.get sh.fail <> None then heal t s
  else begin
    let rec go () =
      if not (Spsc.try_push sh.ring m) then begin
        if Atomic.get sh.fail <> None then heal t s
        else begin
          Domain.cpu_relax ();
          go ()
        end
      end
    in
    go ()
  end

let build ~engine ~shards:k ?(supervise = false) ?(max_restarts = default_max_restarts)
    ?(snapshot_every = default_snapshot_every) config ~shard_insts ~baseline
    ~sampler_inst ~pending ~nevents =
  let t =
    {
      engine;
      packed = Engine.detector engine;
      config;
      k;
      supervise;
      max_restarts;
      snapshot_every;
      shards =
        Array.map
          (fun inst ->
            {
              ring = Spsc.create ~capacity:ring_capacity ~dummy:Stop;
              inst;
              domain = None;
              fail = Atomic.make None;
              snap_slot = Atomic.make None;
              pushed = 0;
              backlog = [||];
              blen = 0;
              bbase = 0;
              restore_count = 0;
              restore_snap = None;
              restarts = 0;
              dead = None;
            })
          shard_insts;
      baseline;
      sampler_inst;
      pending;
      routed = Array.make k 0;
      nevents;
      stopped = false;
    }
  in
  for s = 0 to k - 1 do
    spawn_shard t s
  done;
  t

let create ~engine ~shards:k ?supervise ?max_restarts ?snapshot_every
    (config : Detector.config) =
  if k < 1 then invalid_arg "Sharded.create: shards must be positive";
  let packed = Engine.detector engine in
  build ~engine ~shards:k ?supervise ?max_restarts ?snapshot_every config
    ~shard_insts:(Array.init k (fun _ -> fresh_inst packed config))
    ~baseline:(fresh_inst packed config)
    ~sampler_inst:(Sampler.fresh config.Detector.sampler)
    ~pending:(Array.make config.Detector.nthreads false)
    ~nevents:0

let broadcast t m =
  for s = 0 to t.k - 1 do
    push_msg t s m;
    t.routed.(s) <- t.routed.(s) + 1
  done

let handle t i (e : Event.t) =
  if t.stopped then failwith "Sharded.handle: detector is stopped";
  (match e.Event.op with
  | Event.Read x | Event.Write x ->
    let o = owner_of ~shards:t.k x in
    (* The router's sampler instance sees every access, exactly once, in
       trace order — the instance contract.  Query before the && so stateful
       strategies advance even while the bit is already set. *)
    let sampled = Sampler.query t.sampler_inst i e in
    if sampled && not t.pending.(e.Event.thread) then begin
      t.pending.(e.Event.thread) <- true;
      for s = 0 to t.k - 1 do
        (* the owner sets its own bit when it handles the event *)
        if s <> o then push_msg t s (Mark e.Event.thread)
      done;
      t.baseline.i_note e.Event.thread
    end;
    push_msg t o (Ev (i, e));
    t.routed.(o) <- t.routed.(o) + 1
  | Event.Acquire _ | Event.Acquire_load _ ->
    (* acquires never flush pending *)
    broadcast t (Ev (i, e));
    t.baseline.i_handle i e
  | Event.Release _ | Event.Release_store _ ->
    broadcast t (Ev (i, e));
    t.baseline.i_handle i e;
    t.pending.(e.Event.thread) <- false
  | Event.Fork _ ->
    (* fork flushes the forking thread *)
    broadcast t (Ev (i, e));
    t.baseline.i_handle i e;
    t.pending.(e.Event.thread) <- false
  | Event.Join u ->
    (* join flushes the joined child *)
    broadcast t (Ev (i, e));
    t.baseline.i_handle i e;
    t.pending.(u) <- false);
  t.nevents <- t.nevents + 1

(* A pending-bit transition whose triggering access is owned elsewhere — a
   cluster worker applying a [Mark] from its router (see {!Cmsg}).  From
   this detector's point of view no internal shard owns the access, so the
   mark goes to every shard, exactly as [handle] sends it to every
   non-owner; the baseline notes it too, keeping the internal baseline
   identical to the global run's.  Not an event: [nevents] and the routed
   counters stay put. *)
let note_sampled t th =
  if t.stopped then failwith "Sharded.note_sampled: detector is stopped";
  if th < 0 || th >= Array.length t.pending then
    failwith (Printf.sprintf "Sharded.note_sampled: thread %d out of range" th);
  if not t.pending.(th) then begin
    t.pending.(th) <- true;
    for s = 0 to t.k - 1 do
      push_msg t s (Mark th)
    done;
    t.baseline.i_note th
  end

let events t = t.nevents

let shard_event_counts t = Array.copy t.routed

let ring_occupancy t = Array.map (fun sh -> Spsc.length sh.ring) t.shards

let restart_counts t = Array.map (fun sh -> sh.restarts) t.shards

let restarts_total t = Array.fold_left (fun acc sh -> acc + sh.restarts) 0 t.shards

(* Wait until every shard has fully processed everything routed so far,
   healing failures as they surface (a heal replays, so the wait starts
   over). *)
let flush t =
  if not t.stopped then begin
    let again = ref true in
    while !again do
      again := false;
      Array.iteri
        (fun s sh ->
          check_dead sh;
          while (not (Spsc.is_empty sh.ring)) && Atomic.get sh.fail = None do
            Domain.cpu_relax ()
          done;
          if Atomic.get sh.fail <> None then begin
            heal t s;
            again := true
          end)
        t.shards
    done
  end
  else Array.iter check_dead t.shards

let result t =
  flush t;
  let rs = Array.map (fun sh -> sh.inst.i_result ()) t.shards in
  let base = t.baseline.i_result () in
  let races =
    List.sort
      (fun (a : Race.t) (b : Race.t) -> Stdlib.compare a.Race.index b.Race.index)
      (List.concat_map (fun (r : Detector.result) -> r.Detector.races) (Array.to_list rs))
  in
  {
    Detector.engine = base.Detector.engine;
    races;
    metrics =
      Metrics.merge_shards ~sync_baseline:base.Detector.metrics
        (Array.map (fun (r : Detector.result) -> r.Detector.metrics) rs);
  }

let stop t =
  if not t.stopped then begin
    (* Heal pending failures first so the joined state is the exact prefix
       state ({!result} and the snapshot accessors stay valid after stop).
       An exhausted restart budget is re-raised only after every domain has
       been joined — no leaks on the fail-fast path. *)
    let pending_exn = ref None in
    if t.supervise then
      Array.iteri
        (fun s sh ->
          if Atomic.get sh.fail <> None && sh.dead = None then
            try heal t s
            with e -> if !pending_exn = None then pending_exn := Some e)
        t.shards;
    Array.iteri
      (fun s _ ->
        let sh = t.shards.(s) in
        match sh.domain with
        | None -> ()
        | Some d ->
          let exited =
            match Atomic.get sh.fail with Some (_, e) -> e | None -> false
          in
          if not exited then Spsc.push sh.ring Stop;
          Domain.join d;
          sh.domain <- None;
          while not (Spsc.is_empty sh.ring) do
            Spsc.advance sh.ring
          done)
      t.shards;
    t.stopped <- true;
    (match !pending_exn with Some e -> raise e | None -> ());
    if not t.supervise then
      Array.iteri
        (fun s sh ->
          match Atomic.get sh.fail with
          | Some (reason, _) ->
            failwith (Printf.sprintf "Sharded: shard %d failed: %s" s reason)
          | None -> ())
        t.shards
  end

let shard_snapshots t =
  flush t;
  Array.map (fun sh -> sh.inst.i_snapshot ()) t.shards

let router_snapshot t =
  flush t;
  let enc = Snap.Enc.create () in
  Snap.Enc.int enc t.k;
  Snap.Enc.int enc t.nevents;
  Snap.Enc.bool_array enc t.pending;
  t.sampler_inst.Sampler.save enc;
  Snap.Enc.string enc (t.baseline.i_snapshot ());
  Snap.Enc.to_snap enc

let restore ~engine ~shards:k ?supervise ?max_restarts ?snapshot_every
    (config : Detector.config) ~router shard_snaps =
  if k < 1 then invalid_arg "Sharded.restore: shards must be positive";
  Snap.expect
    (Array.length shard_snaps = k)
    "Sharded.restore: shard snapshot count does not match shard count";
  let dec = Snap.Dec.of_snap router in
  let k' = Snap.Dec.int dec in
  Snap.expect (k' = k) "Sharded.restore: router snapshot was taken with a different K";
  let nevents = Snap.Dec.int dec in
  Snap.expect (nevents >= 0) "Sharded.restore: negative event count";
  let pending = Snap.Dec.bool_array_n dec config.Detector.nthreads in
  let sampler_inst = Sampler.fresh config.Detector.sampler in
  sampler_inst.Sampler.load dec;
  let base_snap = Snap.Dec.string dec in
  Snap.Dec.finish dec;
  let packed = Engine.detector engine in
  build ~engine ~shards:k ?supervise ?max_restarts ?snapshot_every config
    ~shard_insts:(Array.map (fun s -> restored_inst packed config s) shard_snaps)
    ~baseline:(restored_inst packed config base_snap)
    ~sampler_inst ~pending ~nevents
