module Trace = Ft_trace.Trace
module Trace_binary = Ft_trace.Trace_binary
module Detector = Ft_core.Detector
module Engine = Ft_core.Engine
module Sampler = Ft_core.Sampler
module Metrics = Ft_core.Metrics
module Snap = Ft_core.Snap
module Checkpoint = Ft_snapshot.Checkpoint
module Clock = Ft_support.Clock
module Json = Ft_obs.Json
module Registry = Ft_obs.Registry
module Histogram = Ft_obs.Histogram
module Fault = Ft_fault.Fault
module Prng = Ft_support.Prng

(* --- transport addresses -------------------------------------------------- *)

type addr = Unix_path of string | Tcp of string * int

let addr_to_string = function
  | Unix_path path -> "unix:" ^ path
  | Tcp (host, port) -> Printf.sprintf "tcp:%s:%d" host port

let tcp_of_string s =
  match String.rindex_opt s ':' with
  | Some i when i > 0 && i < String.length s - 1 -> (
    let host = String.sub s 0 i in
    let port = String.sub s (i + 1) (String.length s - i - 1) in
    match int_of_string_opt port with
    | Some p when p >= 0 && p < 65536 -> Ok (Tcp (host, p))
    | _ -> Error (Printf.sprintf "bad TCP port in %S" s))
  | _ -> Error (Printf.sprintf "expected HOST:PORT, got %S" s)

let addr_of_string s =
  let prefixed prefix =
    let np = String.length prefix in
    if String.length s > np && String.sub s 0 np = prefix then
      Some (String.sub s np (String.length s - np))
    else None
  in
  match prefixed "unix:" with
  | Some path -> Ok (Unix_path path)
  | None -> (
    match prefixed "tcp:" with
    | Some hostport -> tcp_of_string hostport
    | None -> Ok (Unix_path s))

let resolve_host host =
  match Unix.inet_addr_of_string host with
  | a -> a
  | exception Failure _ -> (
    match Unix.gethostbyname host with
    | { Unix.h_addr_list = [||]; _ } | (exception Not_found) ->
      raise (Unix.Unix_error (Unix.EHOSTUNREACH, "resolve", host))
    | h -> h.Unix.h_addr_list.(0))

let sockaddr_of_addr = function
  | Unix_path path -> Unix.ADDR_UNIX path
  | Tcp (host, port) -> Unix.ADDR_INET (resolve_host host, port)

let socket_domain_of_addr = function
  | Unix_path _ -> Unix.PF_UNIX
  | Tcp _ -> Unix.PF_INET

(* A live daemon on [path] accepts; a stale socket file left by a crashed
   one refuses (or the path is gone).  Probing before the bind keeps two
   servers handed the same path from silently orphaning each other — the
   second refuses to start instead of unlinking the first's socket. *)
let unix_listener_alive path =
  Sys.file_exists path
  &&
  let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let live =
    match Unix.connect fd (Unix.ADDR_UNIX path) with
    | () -> true
    | exception Unix.Unix_error _ -> false
  in
  (try Unix.close fd with Unix.Unix_error _ -> ());
  live

let default_backlog = 128

(* Bind + listen, returning the descriptor and the *actual* address — a
   TCP bind to port 0 resolves to the kernel-chosen port, which is what a
   [ready_file] publishes.  Close-on-exec everywhere: a router that forks
   worker processes must not leak its listener into them. *)
let listen_socket ?(backlog = default_backlog) addr =
  match addr with
  | Unix_path path ->
    if unix_listener_alive path then
      failwith
        (Printf.sprintf "socket %s already has a live server listening; refusing to start"
           path);
    (try Unix.unlink path with Unix.Unix_error _ -> ());
    let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    (try
       Unix.bind fd (Unix.ADDR_UNIX path);
       Unix.listen fd backlog
     with e ->
       (try Unix.close fd with Unix.Unix_error _ -> ());
       raise e);
    (fd, addr)
  | Tcp (host, port) ->
    let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
    (try
       Unix.setsockopt fd Unix.SO_REUSEADDR true;
       Unix.bind fd (Unix.ADDR_INET (resolve_host host, port));
       Unix.listen fd backlog
     with e ->
       (try Unix.close fd with Unix.Unix_error _ -> ());
       raise e);
    let actual =
      match Unix.getsockname fd with
      | Unix.ADDR_INET (a, p) -> Tcp (Unix.string_of_inet_addr a, p)
      | _ -> addr
    in
    (fd, actual)

(* Atomic publish (write + rename) so a poller never reads a torn line. *)
let write_addr_file path addr =
  let tmp = path ^ ".tmp" in
  let oc = open_out tmp in
  output_string oc (addr_to_string addr ^ "\n");
  close_out oc;
  Sys.rename tmp path

let read_addr_file path =
  match In_channel.with_open_bin path In_channel.input_all with
  | "" -> Error (path ^ " is empty")
  | text -> addr_of_string (String.trim text)
  | exception Sys_error msg -> Error msg

type config = {
  listen : addr;
  engine : Engine.id;
  shards : int;
  sampler : Sampler.t;
  clock_size : int option;
  checkpoint_dir : string option;
  checkpoint_every : int;  (* ingested batches between checkpoint sets; 1 = every batch *)
  resume_dir : string option;
  max_parked : int;
  backlog : int;
  ready_file : string option;
  heartbeat_s : float option;
  metrics_json : string option;
  max_restarts : int;  (* per-shard supervisor restart budget *)
  chaos : Fault.config option;  (* armed at startup when present *)
}

let default_max_parked = 1024
let default_checkpoint_every = 1
let default_deadline_s = 30.0
let default_max_restarts = 8

(* --- the report, shared with [racedet analyze] -------------------------- *)

let report_text ~events (result : Detector.result) =
  let b = Buffer.create 256 in
  let locs = Detector.racy_locations result in
  let m = result.Detector.metrics in
  Printf.bprintf b "engine          : %s\n" result.Detector.engine;
  Printf.bprintf b "events          : %d\n" events;
  Printf.bprintf b "sampled accesses: %d\n" m.Metrics.sampled_accesses;
  Printf.bprintf b "race declarations: %d\n" (List.length result.Detector.races);
  Printf.bprintf b "racy locations  : %d%s\n" (List.length locs)
    (if locs = [] then ""
     else "  (" ^ String.concat ", " (List.map (Printf.sprintf "x%d") locs) ^ ")");
  Printf.bprintf b
    "sync work       : %d/%d acquires skipped, %d/%d releases copied, %d deep copies\n"
    m.Metrics.acquires_skipped m.Metrics.acquires m.Metrics.releases_processed
    m.Metrics.releases m.Metrics.deep_copies;
  Buffer.contents b

let metrics_json_value (m : Metrics.t) =
  Json.Obj
    (Array.to_list
       (Array.map2 (fun n v -> (n, Json.Int v)) Metrics.field_names (Metrics.to_array m)))

(* --- low-level I/O ------------------------------------------------------- *)

exception Recv_deadline of float

let write_all = Evloop.write_all

(* One read, retrying [EINTR] (a signal landed) and [EAGAIN] (the
   descriptor's receive timeout fired mid-transfer — e.g. a slow or busy
   server trickling out a large REPORT blob) until [deadline_at]
   ([Clock.now_s] time).  The per-descriptor timeout is thereby demoted to a
   poll granularity; only the overall deadline fails the operation. *)
let read_retry ~deadline_at fd buf off len =
  let rec go () =
    match Unix.read fd buf off len with
    | n -> n
    | exception
        Unix.Unix_error ((Unix.EINTR | Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
      if Clock.now_s () >= deadline_at then raise (Recv_deadline deadline_at) else go ()
  in
  go ()

let read_line_fd ~deadline_at fd =
  let b = Buffer.create 64 in
  let one = Bytes.create 1 in
  let rec go () =
    match read_retry ~deadline_at fd one 0 1 with
    | 0 -> raise End_of_file
    | _ ->
      let c = Bytes.get one 0 in
      if c = '\n' then Buffer.contents b
      else begin
        Buffer.add_char b c;
        go ()
      end
  in
  go ()

let really_read ~deadline_at fd n =
  let b = Bytes.create n in
  let rec go off =
    if off < n then
      match read_retry ~deadline_at fd b off (n - off) with
      | 0 -> raise End_of_file
      | k -> go (off + k)
  in
  go 0;
  Bytes.unsafe_to_string b

(* --- telemetry ------------------------------------------------------------ *)

(* Counters are bumped only at batch and command boundaries — never inside
   the per-event detection loop — so instrumentation cannot perturb the
   verdict-relevant hot path (DESIGN.md, "Telemetry stays off the hot
   path").  Per-shard and detector series are mirrors refreshed on demand:
   the shard counters live with the router, the merged Metrics with the
   engines, and both are monotone, so copying them into registry counters
   at STATS time preserves Prometheus counter semantics. *)
type telemetry = {
  reg : Registry.t;
  batches_total : Registry.counter;
  parked_total : Registry.counter;
  duplicate_total : Registry.counter;
  resent_total : Registry.counter;
  events_total : Registry.counter;
  conns_total : Registry.counter;
  conns_active : Registry.gauge;
  parked_now : Registry.gauge;
  uptime : Registry.gauge;
  stats_total : Registry.counter;
  checkpoints_total : Registry.counter;
  faults_injected : Registry.counter;
  shard_restarts : Registry.counter;
  checkpoint_failures : Registry.counter;
  ingest_ns : Histogram.t;
  started_ns : int64;
  mutable ring_gauges : Registry.gauge array;    (* one per shard *)
  mutable shard_events : Registry.counter array; (* one per shard, mirrored *)
  mutable det_fields : Registry.counter array;   (* Metrics.field_names order *)
}

let make_telemetry () =
  let reg = Registry.create () in
  {
    reg;
    batches_total =
      Registry.counter reg "serve_batches_ingested_total"
        ~help:"Batches whose events were fed to the detector";
    parked_total =
      Registry.counter reg "serve_batches_parked_total"
        ~help:"Batches that arrived ahead of the expected index and were parked";
    duplicate_total =
      Registry.counter reg "serve_batches_duplicate_total"
        ~help:"Batches whose events were all already ingested (idempotent resend)";
    resent_total =
      Registry.counter reg "serve_batches_resent_total"
        ~help:"Batches overlapping the ingested prefix that still carried new events";
    events_total =
      Registry.counter reg "serve_events_ingested_total"
        ~help:"Events fed to the detector";
    conns_total =
      Registry.counter reg "serve_connections_total" ~help:"Client connections accepted";
    conns_active =
      Registry.gauge reg "serve_connections_active" ~help:"Currently open client connections";
    parked_now = Registry.gauge reg "serve_parked_batches" ~help:"Batches currently parked";
    uptime = Registry.gauge reg "serve_uptime_seconds" ~help:"Seconds since server start";
    stats_total =
      Registry.counter reg "serve_stats_queries_total" ~help:"STATS commands answered";
    checkpoints_total =
      Registry.counter reg "serve_checkpoints_total" ~help:"Checkpoint sets written";
    faults_injected =
      Registry.counter reg "racedet_faults_injected"
        ~help:"Faults fired by the armed chaos schedule (0 when disarmed)";
    shard_restarts =
      Registry.counter reg "racedet_shard_restarts"
        ~help:"Shard workers restarted by the supervisor";
    checkpoint_failures =
      Registry.counter reg "serve_checkpoint_failures_total"
        ~help:"Checkpoint sets abandoned because a write faulted";
    ingest_ns =
      Registry.histogram reg "serve_batch_ingest_ns"
        ~help:"Per-batch ingest latency (feed + drain + checkpoint), nanoseconds";
    started_ns = Clock.now_ns ();
    ring_gauges = [||];
    shard_events = [||];
    det_fields = [||];
  }

(* Per-shard and per-field series exist once the detector does (K and the
   field set are only known then). *)
let attach_shard_series tel ~shards =
  if Array.length tel.ring_gauges = 0 then begin
    tel.ring_gauges <-
      Array.init shards (fun k ->
          Registry.gauge tel.reg "serve_shard_ring_occupancy"
            ~help:"Unconsumed messages in each shard's ring"
            ~labels:[ ("shard", string_of_int k) ]);
    tel.shard_events <-
      Array.init shards (fun k ->
          Registry.counter tel.reg "serve_shard_events_total"
            ~help:"Events routed to each shard (accesses to the owner, sync to all)"
            ~labels:[ ("shard", string_of_int k) ]);
    tel.det_fields <-
      Array.map
        (fun f ->
          Registry.counter tel.reg "racedet_metric"
            ~help:"Merged detector work counters (Metrics.merge_shards over all shards)"
            ~labels:[ ("field", f) ])
        Metrics.field_names
  end

(* --- server state -------------------------------------------------------- *)

type state = {
  cfg : config;
  tel : telemetry;
  mutable det : Sharded.t option;
  mutable universe : (int * int * int) option;  (* nthreads, nlocks, nlocs *)
  mutable clock_size : int;
  mutable expected : int;  (* next stream position: events (BATCH) or messages (CBATCH) *)
  mutable mode : [ `Batch | `Cluster ] option;  (* fixed by the first ingested batch *)
  mutable since_ckpt : int;  (* ingested batches since the last checkpoint set *)
  parked : (int, Trace.t) Hashtbl.t;
  mutable quit : bool;
  mutable stop_reason : string;  (* what ended the serve loop, for the log *)
  mutable failed : string option;  (* fail-fast diagnostic: exit non-zero *)
}

let shard_file dir k = Filename.concat dir (Printf.sprintf "shard-%d.ftc" k)
let router_file dir = Filename.concat dir "router.ftc"

let write_checkpoint st =
  match (st.cfg.checkpoint_dir, st.det, st.universe) with
  | Some dir, Some det, Some (nthreads, nlocks, nlocs) -> (
    let meta =
      {
        Checkpoint.engine = st.cfg.engine;
        sampler = Sampler.name st.cfg.sampler;
        nthreads;
        nlocks;
        nlocs;
        clock_size = st.clock_size;
        next_index = st.expected;
        byte_offset = -1;
      }
    in
    (* A faulted write leaves a mixed checkpoint set on disk, but each file
       is individually atomic (write-fsync-rename) and [try_resume] rejects
       any metadata disagreement between them, degrading to a fresh start —
       so an abandoned set can never produce a wrong resume, only a slower
       one.  Log it, count it, keep serving. *)
    try
      Array.iteri
        (fun k snap ->
          Checkpoint.save (shard_file dir k) { Checkpoint.meta; detector = snap })
        (Sharded.shard_snapshots det);
      Checkpoint.save (router_file dir)
        { Checkpoint.meta; detector = Sharded.router_snapshot det };
      Registry.incr st.tel.checkpoints_total
    with Fault.Injected _ as e ->
      Registry.incr st.tel.checkpoint_failures;
      Printf.eprintf "racedet serve: checkpoint write faulted (%s); continuing\n%!"
        (Printexc.to_string e))
  | _ -> ()

(* The per-batch checkpoint cadence: a standalone daemon checkpoints every
   ingested batch (ack ⇒ durable, [default_checkpoint_every]); a cluster
   worker is spawned with a larger [checkpoint_every] because the router's
   WAL already makes every acknowledged client batch durable — the worker
   checkpoint is then only a recovery-speed bound (the router replays the
   suffix since the worker's last checkpoint from its routed log), and
   fsyncing every CBATCH in K processes at once turns the disk into the
   cluster's bottleneck.  The final checkpoint on shutdown/SIGTERM is
   unconditional either way. *)
let maybe_checkpoint st =
  st.since_ckpt <- st.since_ckpt + 1;
  if st.since_ckpt >= Stdlib.max 1 st.cfg.checkpoint_every then begin
    st.since_ckpt <- 0;
    write_checkpoint st
  end

(* Resume from a checkpoint directory.  Any inconsistency (missing file,
   checksum failure, metadata drift between the per-shard files) degrades to
   a logged fresh start — clients resend idempotently, so the result is
   still exact. *)
let try_resume (cfg : config) =
  match cfg.resume_dir with
  | None -> None
  | Some dir ->
    let ( let* ) = Result.bind in
    let outcome =
      let* router_cp = Checkpoint.load (router_file dir) in
      let meta = router_cp.Checkpoint.meta in
      let* () =
        if meta.Checkpoint.engine = cfg.engine then Ok ()
        else Error "checkpoint engine differs from --engine"
      in
      let* () =
        if meta.Checkpoint.sampler = Sampler.name cfg.sampler then Ok ()
        else Error "checkpoint sampler differs from the configured sampler"
      in
      let* shard_cps =
        let rec load k acc =
          if k = cfg.shards then Ok (List.rev acc)
          else
            let* cp = Checkpoint.load (shard_file dir k) in
            if cp.Checkpoint.meta = meta then load (k + 1) (cp :: acc)
            else Error (Printf.sprintf "shard-%d.ftc metadata disagrees with router.ftc" k)
        in
        load 0 []
      in
      let config =
        {
          Detector.nthreads = meta.Checkpoint.nthreads;
          nlocks = meta.Checkpoint.nlocks;
          nlocs = meta.Checkpoint.nlocs;
          clock_size = meta.Checkpoint.clock_size;
          sampler = cfg.sampler;
        }
      in
      match
        Sharded.restore ~engine:cfg.engine ~shards:cfg.shards ~supervise:true
          ~max_restarts:cfg.max_restarts config
          ~router:router_cp.Checkpoint.detector
          (Array.of_list (List.map (fun cp -> cp.Checkpoint.detector) shard_cps))
      with
      | det -> Ok (det, meta)
      | exception Snap.Corrupt msg -> Error msg
    in
    (match outcome with
    | Ok r -> Some r
    | Error msg ->
      Printf.eprintf "racedet serve: cannot resume from %s (%s); starting fresh\n%!" dir
        msg;
      None)

let ensure_detector st (nthreads, nlocks, nlocs) =
  match (st.det, st.universe) with
  | Some det, Some u ->
    if u = (nthreads, nlocks, nlocs) then Ok det
    else Error "batch universe differs from the session's"
  | None, _ ->
    let clock_size =
      match st.cfg.clock_size with
      | None -> nthreads
      | Some s -> Stdlib.max s nthreads
    in
    let config = { Detector.nthreads; nlocks; nlocs; clock_size; sampler = st.cfg.sampler } in
    let det =
      Sharded.create ~engine:st.cfg.engine ~shards:st.cfg.shards ~supervise:true
        ~max_restarts:st.cfg.max_restarts config
    in
    st.det <- Some det;
    st.universe <- Some (nthreads, nlocks, nlocs);
    st.clock_size <- clock_size;
    attach_shard_series st.tel ~shards:st.cfg.shards;
    Ok det
  | Some _, None -> assert false

(* The session speaks either plain BATCH streams (units: events) or cluster
   CBATCH streams (units: messages); [expected] counts stream units, so
   mixing the two would silently corrupt the idempotent-resend arithmetic. *)
let ensure_mode st mode =
  match st.mode with
  | None ->
    st.mode <- Some mode;
    Ok ()
  | Some m when m = mode -> Ok ()
  | Some `Batch -> Error "session already ingests BATCH streams (not a cluster worker)"
  | Some `Cluster -> Error "session already ingests CBATCH streams (cluster worker)"

let feed st det trace base =
  let n = Trace.length trace in
  (* skip any already-ingested prefix: resends are idempotent *)
  for i = Stdlib.max 0 (st.expected - base) to n - 1 do
    Sharded.handle det (base + i) (Trace.get trace i)
  done;
  st.expected <- Stdlib.max st.expected (base + n)

let rec drain_parked st det =
  let eligible =
    Hashtbl.fold
      (fun base _ acc ->
        if base <= st.expected then Some (match acc with None -> base | Some b -> Stdlib.min b base)
        else acc)
      st.parked None
  in
  match eligible with
  | None -> ()
  | Some base ->
    let trace = Hashtbl.find st.parked base in
    Hashtbl.remove st.parked base;
    feed st det trace base;
    drain_parked st det

let reply = Evloop.reply

(* A shard past its restart budget is unrecoverable within this process:
   reply with the diagnostic, then fail fast — clients hold the full stream
   and can replay into a fresh server. *)
let fail_fast st conn msg =
  st.failed <- Some msg;
  st.stop_reason <- "shard failure";
  st.quit <- true;
  reply conn (Printf.sprintf "ERR %s\n" msg)

let handle_batch st conn base payload =
  if base < 0 then reply conn "ERR negative base index\n"
  else
    (* [unsafe_of_string]: [payload] is a fresh private string from
       [Netbuf.take] and the decoder never writes through the reader *)
    match Trace_binary.of_bytes (Bytes.unsafe_of_string payload) with
    | Error msg -> reply conn (Printf.sprintf "ERR bad batch: %s\n" msg)
    | Ok trace -> (
      let u = (trace.Trace.nthreads, trace.Trace.nlocks, trace.Trace.nlocs) in
      match
        match ensure_mode st `Batch with
        | Error _ as e -> e
        | Ok () -> ensure_detector st u
      with
      | Error msg -> reply conn (Printf.sprintf "ERR %s\n" msg)
      | Ok det -> (
        try
          if base > st.expected then
            if Hashtbl.length st.parked >= st.cfg.max_parked then
              reply conn "ERR parked batch limit exceeded\n"
            else begin
              Hashtbl.replace st.parked base trace;
              Registry.incr st.tel.parked_total;
              reply conn (Printf.sprintf "OK %d\n" st.expected)
            end
          else begin
            let before = st.expected in
            let t0 = Clock.now_ns () in
            feed st det trace base;
            drain_parked st det;
            maybe_checkpoint st;
            let ingested = st.expected - before in
            let tel = st.tel in
            if ingested = 0 then Registry.incr tel.duplicate_total
            else begin
              Registry.incr tel.batches_total;
              Registry.add tel.events_total ingested;
              if base < before then Registry.incr tel.resent_total
            end;
            Histogram.observe tel.ingest_ns
              (Int64.to_int (Int64.sub (Clock.now_ns ()) t0));
            reply conn (Printf.sprintf "OK %d\n" st.expected)
          end
        with
        | Failure msg -> reply conn (Printf.sprintf "ERR %s\n" msg)
        | Sharded.Shard_failed msg -> fail_fast st conn msg))

(* A cluster sub-stream batch.  The router is this worker's only client and
   sends sequence-contiguous CBATCHes, so there is no parking here — only
   the idempotent prefix skip that makes post-recovery replays (and a
   restarted router replaying from zero) exact. *)
let handle_cbatch st conn seq payload =
  if seq < 0 then reply conn "ERR negative sequence number\n"
  else
    match Cmsg.decode payload with
    | Error msg -> reply conn (Printf.sprintf "ERR bad cluster batch: %s\n" msg)
    | Ok (u, msgs) -> (
      match
        match ensure_mode st `Cluster with
        | Error _ as e -> e
        | Ok () -> ensure_detector st u
      with
      | Error msg -> reply conn (Printf.sprintf "ERR %s\n" msg)
      | Ok det -> (
        try
          if seq > st.expected then
            reply conn
              (Printf.sprintf "ERR cluster batch from the future (seq %d, expected %d)\n"
                 seq st.expected)
          else begin
            let n = Array.length msgs in
            let before = st.expected in
            let t0 = Clock.now_ns () in
            for j = st.expected - seq to n - 1 do
              match msgs.(j) with
              | Cmsg.Ev (i, e) -> Sharded.handle det i e
              | Cmsg.Mark th -> Sharded.note_sampled det th
            done;
            st.expected <- Stdlib.max st.expected (seq + n);
            maybe_checkpoint st;
            let ingested = st.expected - before in
            let tel = st.tel in
            if ingested = 0 then Registry.incr tel.duplicate_total
            else begin
              Registry.incr tel.batches_total;
              Registry.add tel.events_total ingested;
              if seq < before then Registry.incr tel.resent_total
            end;
            Histogram.observe tel.ingest_ns
              (Int64.to_int (Int64.sub (Clock.now_ns ()) t0));
            reply conn (Printf.sprintf "OK %d\n" st.expected)
          end
        with
        | Failure msg -> reply conn (Printf.sprintf "ERR %s\n" msg)
        | Sharded.Shard_failed msg -> fail_fast st conn msg))

(* --- STATS ----------------------------------------------------------------- *)

(* Cheap refresh: registry gauges and router-side mirrors only — safe for
   the heartbeat, which must not stall ingestion behind a shard flush. *)
let refresh_cheap st =
  let tel = st.tel in
  Registry.set tel.parked_now (Hashtbl.length st.parked);
  Registry.set tel.uptime (int_of_float (Clock.elapsed_s ~since:tel.started_ns));
  Registry.set_counter tel.faults_injected (Fault.fired ());
  match st.det with
  | None -> ()
  | Some det ->
    Registry.set_counter tel.shard_restarts (Sharded.restarts_total det);
    Array.iteri
      (fun k occ -> if k < Array.length tel.ring_gauges then Registry.set tel.ring_gauges.(k) occ)
      (Sharded.ring_occupancy det);
    Array.iteri
      (fun k c ->
        if k < Array.length tel.shard_events then Registry.set_counter tel.shard_events.(k) c)
      (Sharded.shard_event_counts det)

(* Full refresh: additionally flush the shards and mirror the merged
   detector metrics.  [Sharded.result] waits for the rings to drain, so this
   runs only on explicit STATS queries and at shutdown, never on the
   heartbeat. *)
let refresh_full st =
  refresh_cheap st;
  match st.det with
  | None -> None
  | Some det ->
    let result = Sharded.result det in
    Array.iteri
      (fun i v ->
        if i < Array.length st.tel.det_fields then
          Registry.set_counter st.tel.det_fields.(i) v)
      (Metrics.to_array result.Detector.metrics);
    Some result

let stats_json st result =
  let events = match st.det with Some det -> Sharded.events det | None -> 0 in
  Json.Obj
    [
      ("engine", Json.Str (Engine.name st.cfg.engine));
      ("sampler", Json.Str (Sampler.name st.cfg.sampler));
      ("shards", Json.Int st.cfg.shards);
      ("events", Json.Int events);
      ("next_index", Json.Int st.expected);
      ("parked", Json.Int (Hashtbl.length st.parked));
      ("uptime_s", Json.Float (Clock.elapsed_s ~since:st.tel.started_ns));
      ( "ring_occupancy",
        match st.det with
        | None -> Json.Arr []
        | Some det ->
          Json.Arr (Array.to_list (Array.map (fun n -> Json.Int n) (Sharded.ring_occupancy det)))
      );
      ( "shard_events",
        match st.det with
        | None -> Json.Arr []
        | Some det ->
          Json.Arr
            (Array.to_list (Array.map (fun n -> Json.Int n) (Sharded.shard_event_counts det)))
      );
      ("telemetry", Registry.to_json st.tel.reg);
      ( "metrics",
        match result with
        | None -> Json.Null
        | Some (r : Detector.result) -> metrics_json_value r.Detector.metrics );
      ( "races",
        match result with
        | None -> Json.Null
        | Some r -> Json.Int (List.length r.Detector.races) );
    ]

let stats_payload st format =
  Registry.incr st.tel.stats_total;
  let result = refresh_full st in
  match format with
  | `Prometheus -> Registry.to_prometheus st.tel.reg
  | `Json -> Json.to_string_pretty (stats_json st result)

let heartbeat_line st =
  let tel = st.tel in
  refresh_cheap st;
  Printf.sprintf
    "racedet serve: up %ds, events=%d batches=%d parked=%d conns=%d ingest p99=%.3fms max=%.3fms"
    (Registry.gauge_value tel.uptime)
    (Registry.counter_value tel.events_total)
    (Registry.counter_value tel.batches_total)
    (Hashtbl.length st.parked)
    (Registry.gauge_value tel.conns_active)
    (float_of_int (Histogram.quantile tel.ingest_ns 0.99) /. 1e6)
    (float_of_int (Histogram.max_value tel.ingest_ns) /. 1e6)

let handle_line st conn line =
  match String.split_on_char ' ' (String.trim line) with
  | [ "BATCH"; base; nbytes ] -> (
    match (int_of_string_opt base, int_of_string_opt nbytes) with
    | Some b, Some n when n >= 0 ->
      Evloop.await_blob conn n (fun payload -> handle_batch st conn b payload)
    | _ -> reply conn "ERR malformed BATCH header\n")
  | [ "CBATCH"; seq; nbytes ] -> (
    match (int_of_string_opt seq, int_of_string_opt nbytes) with
    | Some s, Some n when n >= 0 ->
      Evloop.await_blob conn n (fun payload -> handle_cbatch st conn s payload)
    | _ -> reply conn "ERR malformed CBATCH header\n")
  | [ "REPORT" ] -> (
    match st.det with
    | None -> reply conn "ERR no events ingested\n"
    | Some det -> (
      try
        let text = report_text ~events:(Sharded.events det) (Sharded.result det) in
        reply conn (Printf.sprintf "REPORT %d\n%s" (String.length text) text)
      with
      | Failure msg -> reply conn (Printf.sprintf "ERR %s\n" msg)
      | Sharded.Shard_failed msg -> fail_fast st conn msg))
  | [ "RESULT" ] -> (
    (* the raw partial result, for a cluster router's merge *)
    match st.det with
    | None -> reply conn "ERR no events ingested\n"
    | Some det -> (
      try
        let blob = Cmsg.encode_result (Sharded.result det) in
        reply conn (Printf.sprintf "RESULT %d\n%s" (String.length blob) blob)
      with
      | Failure msg -> reply conn (Printf.sprintf "ERR %s\n" msg)
      | Sharded.Shard_failed msg -> fail_fast st conn msg))
  | [ "SEQ" ] ->
    (* where this session's stream stands — what a recovering router uses
       to find the replay point after respawning a worker *)
    reply conn (Printf.sprintf "SEQ %d\n" st.expected)
  | [ "STATS" ] | [ "STATS"; "PROM" ] -> (
    try
      let text = stats_payload st `Prometheus in
      reply conn (Printf.sprintf "STATS %d\n%s" (String.length text) text)
    with
    | Failure msg -> reply conn (Printf.sprintf "ERR %s\n" msg)
    | Sharded.Shard_failed msg -> fail_fast st conn msg)
  | [ "STATS"; "JSON" ] -> (
    try
      let text = stats_payload st `Json in
      reply conn (Printf.sprintf "STATS %d\n%s" (String.length text) text)
    with
    | Failure msg -> reply conn (Printf.sprintf "ERR %s\n" msg)
    | Sharded.Shard_failed msg -> fail_fast st conn msg)
  | [ "SHUTDOWN" ] ->
    write_checkpoint st;
    reply conn "BYE\n";
    st.stop_reason <- "SHUTDOWN command";
    st.quit <- true
  | [ "" ] -> ()
  | _ -> reply conn "ERR unknown command\n"

let write_metrics_json_file st =
  match st.cfg.metrics_json with
  | None -> ()
  | Some path ->
    let result = refresh_full st in
    let doc = stats_json st result in
    let oc = open_out path in
    output_string oc (Json.to_string_pretty doc);
    close_out oc

let run cfg =
  if cfg.shards < 1 then invalid_arg "Serve.run: shards must be positive";
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  (match cfg.chaos with
  | None -> ()
  | Some c ->
    Fault.arm c;
    Printf.eprintf "racedet serve: chaos armed (%s)\n%!" (Fault.spec_of_config c));
  let listen_fd, actual = listen_socket ~backlog:cfg.backlog cfg.listen in
  (match cfg.ready_file with
  | None -> ()
  | Some path -> write_addr_file path actual);
  let st =
    {
      cfg;
      tel = make_telemetry ();
      det = None;
      universe = None;
      clock_size = 0;
      expected = 0;
      mode = None;
      since_ckpt = 0;
      parked = Hashtbl.create 16;
      quit = false;
      stop_reason = "";
      failed = None;
    }
  in
  (* Graceful shutdown on SIGTERM/SIGINT: finish the current select round,
     then run the same drain → final checkpoint → metrics dump path as a
     SHUTDOWN command.  (An abrupt SIGKILL stays covered by the crash/resume
     tests — that is what the per-batch checkpoints are for.) *)
  let on_signal name =
    Sys.Signal_handle
      (fun _ ->
        st.stop_reason <- name;
        st.quit <- true)
  in
  Sys.set_signal Sys.sigterm (on_signal "SIGTERM");
  Sys.set_signal Sys.sigint (on_signal "SIGINT");
  (match try_resume cfg with
  | None -> ()
  | Some (det, meta) ->
    st.det <- Some det;
    st.universe <-
      Some (meta.Checkpoint.nthreads, meta.Checkpoint.nlocks, meta.Checkpoint.nlocs);
    st.clock_size <- meta.Checkpoint.clock_size;
    st.expected <- meta.Checkpoint.next_index;
    attach_shard_series st.tel ~shards:cfg.shards;
    Printf.eprintf "racedet serve: resumed at event %d\n%!" st.expected);
  let last_beat = ref (Clock.now_ns ()) in
  let tick () =
    match cfg.heartbeat_s with
    | Some period when period > 0.0 && Clock.elapsed_s ~since:!last_beat >= period ->
      last_beat := Clock.now_ns ();
      Printf.eprintf "%s\n%!" (heartbeat_line st)
    | _ -> ()
  in
  let remaining =
    Evloop.run ~listen_fd
      ~quit:(fun () -> st.quit)
      ~on_line:(fun conn line -> handle_line st conn line)
      ~on_accept:(fun _ -> Registry.incr st.tel.conns_total)
      ~on_conns:(fun n -> Registry.set st.tel.conns_active n)
      ~tick ~recv_fault:"serve.recv" ()
  in
  if st.stop_reason <> "" then
    Printf.eprintf "racedet serve: shutting down (%s)\n%!" st.stop_reason;
  (match st.failed with
  | Some _ -> ()  (* fail-fast: the on-disk checkpoint of the last good batch stands *)
  | None ->
    write_checkpoint st;
    (try write_metrics_json_file st
     with Sharded.Shard_failed msg -> st.failed <- Some msg));
  (match st.det with
  | Some det -> ( try Sharded.stop det with Sharded.Shard_failed _ -> ())
  | None -> ());
  List.iter Evloop.close_conn remaining;
  Unix.close listen_fd;
  (match cfg.listen with
  | Unix_path path -> ( try Unix.unlink path with Unix.Unix_error _ -> ())
  | Tcp _ -> ());
  (match cfg.chaos with
  | None -> ()
  | Some _ ->
    Printf.eprintf "racedet serve: chaos summary: %d faults fired over %d checks, %d shard restarts\n%!"
      (Fault.fired ()) (Fault.checks ())
      (match st.det with Some det -> Sharded.restarts_total det | None -> 0));
  match st.failed with
  | Some msg -> failwith ("racedet serve: " ^ msg)
  | None -> ()

(* --- client side ---------------------------------------------------------- *)

(* Connect with capped exponential backoff: 10ms doubling to 0.8s, plus a
   deterministic jitter drawn from {!Ft_support.Prng} seeded by [?seed] (so
   two emitters racing to the same socket desynchronize, yet a given seed
   replays the exact attempt schedule).  Bounded by [?deadline_s] wall time
   rather than an attempt count — a server that takes 3s to come up costs a
   handful of attempts either way, but a dead one fails at a predictable
   time.  The [emit.connect] injection point makes each attempt chaos-able:
   an injected Exn counts as a failed attempt and backs off like one. *)
let backoff_base_s = 0.01
let backoff_cap_s = 0.8

let connect_stats ?(recv_timeout_s = 0.25) ?deadline_s ?(seed = 0) addr =
  let deadline =
    Clock.now_s () +. Option.value deadline_s ~default:default_deadline_s
  in
  let prng = Prng.create ~seed:(seed lxor 0x5eeed) in
  let rec go ~attempt ~backoff =
    let fd = Unix.socket ~cloexec:true (socket_domain_of_addr addr) Unix.SOCK_STREAM 0 in
    match
      Fault.point ~supports:[ Fault.Exn; Fault.Delay ] "emit.connect";
      Unix.connect fd (sockaddr_of_addr addr)
    with
    | () ->
      Unix.setsockopt_float fd Unix.SO_RCVTIMEO recv_timeout_s;
      (try Unix.setsockopt fd Unix.TCP_NODELAY true with Unix.Unix_error _ -> ());
      (fd, attempt)
    | exception
        (( Unix.Unix_error
             ((Unix.ENOENT | Unix.ECONNREFUSED | Unix.ECONNRESET | Unix.ETIMEDOUT), _, _)
         | Fault.Injected _ ) as e) ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      if Clock.now_s () +. backoff > deadline then
        match e with
        | Fault.Injected _ ->
          raise
            (Unix.Unix_error (Unix.ECONNREFUSED, "connect (chaos)", addr_to_string addr))
        | e -> raise e
      else begin
        Unix.sleepf (backoff +. Prng.float prng (backoff /. 2.0));
        go ~attempt:(attempt + 1) ~backoff:(Stdlib.min backoff_cap_s (2.0 *. backoff))
      end
  in
  go ~attempt:1 ~backoff:backoff_base_s

let connect ?recv_timeout_s ?deadline_s ?seed addr =
  fst (connect_stats ?recv_timeout_s ?deadline_s ?seed addr)

let deadline_at deadline_s =
  Clock.now_s () +. Option.value deadline_s ~default:default_deadline_s

let deadline_error at = Printf.sprintf "timed out (deadline %.1fs ago)" (Clock.now_s () -. at)

let expect_line ~deadline_at fd =
  match read_line_fd ~deadline_at fd with
  | line -> Ok line
  | exception End_of_file -> Error "server closed the connection"
  | exception Recv_deadline at -> Error (deadline_error at)
  | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)

(* [<verb> <nbytes>\n<blob>] replies: validate the header, then read the
   sized blob under the same overall deadline. *)
let expect_blob ~deadline_at fd ~verb =
  match expect_line ~deadline_at fd with
  | Error _ as e -> e
  | Ok line -> (
    match String.split_on_char ' ' line with
    | [ v; nbytes ] when v = verb -> (
      match int_of_string_opt nbytes with
      | Some n -> (
        try Ok (really_read ~deadline_at fd n) with
        | End_of_file -> Error ("truncated " ^ String.lowercase_ascii verb)
        | Recv_deadline at -> Error (deadline_error at)
        | Unix.Unix_error (e, _, _) -> Error (Unix.error_message e))
      | None -> Error ("malformed reply: " ^ line))
    | _ -> Error line)

let expect_ok ~deadline_at fd =
  match expect_line ~deadline_at fd with
  | Error _ as e -> e
  | Ok line -> (
    match String.split_on_char ' ' line with
    | [ "OK"; total ] -> (
      match int_of_string_opt total with
      | Some t -> Ok t
      | None -> Error ("malformed reply: " ^ line))
    | _ -> Error line)

let send_batch ?deadline_s fd ~base trace =
  let deadline_at = deadline_at deadline_s in
  let payload = Trace_binary.to_bytes trace in
  match
    write_all fd (Printf.sprintf "BATCH %d %d\n" base (Bytes.length payload));
    write_all fd (Bytes.to_string payload)
  with
  | () -> expect_ok ~deadline_at fd
  | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)

(* Fire-and-forget half of [send_cbatch] for the router's pipelined window:
   the CBATCH goes out now, its "OK <total>" ack is collected later by the
   ack pump.  Raises on write errors — the caller owns worker recovery. *)
let send_cbatch_nowait fd ~seq payload =
  write_all fd (Printf.sprintf "CBATCH %d %d\n" seq (String.length payload));
  write_all fd payload

let send_cbatch ?deadline_s fd ~seq payload =
  let deadline_at = deadline_at deadline_s in
  match
    write_all fd (Printf.sprintf "CBATCH %d %d\n" seq (String.length payload));
    write_all fd payload
  with
  | () -> expect_ok ~deadline_at fd
  | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)

let fetch_report ?deadline_s fd =
  let deadline_at = deadline_at deadline_s in
  match write_all fd "REPORT\n" with
  | () -> expect_blob ~deadline_at fd ~verb:"REPORT"
  | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)

let fetch_result ?deadline_s fd =
  let deadline_at = deadline_at deadline_s in
  match write_all fd "RESULT\n" with
  | () -> (
    match expect_blob ~deadline_at fd ~verb:"RESULT" with
    | Error _ as e -> e
    | Ok blob -> Cmsg.decode_result blob)
  | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)

let fetch_seq ?deadline_s fd =
  let deadline_at = deadline_at deadline_s in
  match write_all fd "SEQ\n" with
  | () -> (
    match expect_line ~deadline_at fd with
    | Error _ as e -> e
    | Ok line -> (
      match String.split_on_char ' ' line with
      | [ "SEQ"; n ] -> (
        match int_of_string_opt n with
        | Some v when v >= 0 -> Ok v
        | _ -> Error ("malformed reply: " ^ line))
      | _ -> Error line))
  | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)

let fetch_stats ?deadline_s ?(format = `Prometheus) fd =
  let deadline_at = deadline_at deadline_s in
  let cmd = match format with `Prometheus -> "STATS\n" | `Json -> "STATS JSON\n" in
  match write_all fd cmd with
  | () -> expect_blob ~deadline_at fd ~verb:"STATS"
  | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)

let shutdown ?deadline_s fd =
  let deadline_at = deadline_at deadline_s in
  match write_all fd "SHUTDOWN\n" with
  | () -> (
    match expect_line ~deadline_at fd with
    | Ok "BYE" -> Ok ()
    | Ok line -> Error line
    | Error _ as e -> e)
  | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)

let migrate ?deadline_s fd worker =
  let deadline_at = deadline_at deadline_s in
  match write_all fd (Printf.sprintf "MIGRATE %d\n" worker) with
  | () -> Result.map (fun _ -> ()) (expect_ok ~deadline_at fd)
  | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)

let resize ?deadline_s fd delta =
  let deadline_at = deadline_at deadline_s in
  match write_all fd (Printf.sprintf "RESIZE %+d\n" delta) with
  | () -> expect_ok ~deadline_at fd
  | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)

(* Generalizes [unix_listener_alive] to both address kinds: one connect
   probe, no protocol exchange.  A loopback TCP port with no listener
   refuses immediately, so this stays a fast check for stale ready-files. *)
let addr_alive addr =
  match addr with
  | Unix_path path -> unix_listener_alive path
  | Tcp _ -> (
    let fd = Unix.socket ~cloexec:true (socket_domain_of_addr addr) Unix.SOCK_STREAM 0 in
    let live =
      match Unix.connect fd (sockaddr_of_addr addr) with
      | () -> true
      | exception Unix.Unix_error _ -> false
    in
    (try Unix.close fd with Unix.Unix_error _ -> ());
    live)

let close fd = try Unix.close fd with Unix.Unix_error _ -> ()
