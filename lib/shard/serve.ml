module Trace = Ft_trace.Trace
module Trace_binary = Ft_trace.Trace_binary
module Detector = Ft_core.Detector
module Engine = Ft_core.Engine
module Sampler = Ft_core.Sampler
module Metrics = Ft_core.Metrics
module Snap = Ft_core.Snap
module Checkpoint = Ft_snapshot.Checkpoint

type config = {
  socket : string;
  engine : Engine.id;
  shards : int;
  sampler : Sampler.t;
  clock_size : int option;
  checkpoint_dir : string option;
  resume_dir : string option;
  max_parked : int;
}

let default_max_parked = 1024

(* --- the report, shared with [racedet analyze] -------------------------- *)

let report_text ~events (result : Detector.result) =
  let b = Buffer.create 256 in
  let locs = Detector.racy_locations result in
  let m = result.Detector.metrics in
  Printf.bprintf b "engine          : %s\n" result.Detector.engine;
  Printf.bprintf b "events          : %d\n" events;
  Printf.bprintf b "sampled accesses: %d\n" m.Metrics.sampled_accesses;
  Printf.bprintf b "race declarations: %d\n" (List.length result.Detector.races);
  Printf.bprintf b "racy locations  : %d%s\n" (List.length locs)
    (if locs = [] then ""
     else "  (" ^ String.concat ", " (List.map (Printf.sprintf "x%d") locs) ^ ")");
  Printf.bprintf b
    "sync work       : %d/%d acquires skipped, %d/%d releases copied, %d deep copies\n"
    m.Metrics.acquires_skipped m.Metrics.acquires m.Metrics.releases_processed
    m.Metrics.releases m.Metrics.deep_copies;
  Buffer.contents b

(* --- low-level I/O ------------------------------------------------------- *)

let write_all fd s =
  let b = Bytes.of_string s in
  let n = Bytes.length b in
  let rec go off = if off < n then go (off + Unix.write fd b off (n - off)) in
  go 0

let read_line_fd fd =
  let b = Buffer.create 64 in
  let one = Bytes.create 1 in
  let rec go () =
    match Unix.read fd one 0 1 with
    | 0 -> raise End_of_file
    | _ ->
      let c = Bytes.get one 0 in
      if c = '\n' then Buffer.contents b
      else begin
        Buffer.add_char b c;
        go ()
      end
  in
  go ()

let really_read fd n =
  let b = Bytes.create n in
  let rec go off =
    if off < n then
      match Unix.read fd b off (n - off) with
      | 0 -> raise End_of_file
      | k -> go (off + k)
  in
  go 0;
  Bytes.unsafe_to_string b

(* --- server state -------------------------------------------------------- *)

type conn = {
  fd : Unix.file_descr;
  mutable data : string;  (* unconsumed input *)
  mutable blob : (int * int) option;  (* BATCH header seen: base, bytes awaited *)
  mutable closed : bool;
}

type state = {
  cfg : config;
  mutable det : Sharded.t option;
  mutable universe : (int * int * int) option;  (* nthreads, nlocks, nlocs *)
  mutable clock_size : int;
  mutable expected : int;  (* next global event index *)
  parked : (int, Trace.t) Hashtbl.t;
  mutable quit : bool;
}

let shard_file dir k = Filename.concat dir (Printf.sprintf "shard-%d.ftc" k)
let router_file dir = Filename.concat dir "router.ftc"

let write_checkpoint st =
  match (st.cfg.checkpoint_dir, st.det, st.universe) with
  | Some dir, Some det, Some (nthreads, nlocks, nlocs) ->
    let meta =
      {
        Checkpoint.engine = st.cfg.engine;
        sampler = Sampler.name st.cfg.sampler;
        nthreads;
        nlocks;
        nlocs;
        clock_size = st.clock_size;
        next_index = st.expected;
        byte_offset = -1;
      }
    in
    Array.iteri
      (fun k snap ->
        Checkpoint.save (shard_file dir k) { Checkpoint.meta; detector = snap })
      (Sharded.shard_snapshots det);
    Checkpoint.save (router_file dir)
      { Checkpoint.meta; detector = Sharded.router_snapshot det }
  | _ -> ()

(* Resume from a checkpoint directory.  Any inconsistency (missing file,
   checksum failure, metadata drift between the per-shard files) degrades to
   a logged fresh start — clients resend idempotently, so the result is
   still exact. *)
let try_resume (cfg : config) =
  match cfg.resume_dir with
  | None -> None
  | Some dir ->
    let ( let* ) = Result.bind in
    let outcome =
      let* router_cp = Checkpoint.load (router_file dir) in
      let meta = router_cp.Checkpoint.meta in
      let* () =
        if meta.Checkpoint.engine = cfg.engine then Ok ()
        else Error "checkpoint engine differs from --engine"
      in
      let* () =
        if meta.Checkpoint.sampler = Sampler.name cfg.sampler then Ok ()
        else Error "checkpoint sampler differs from the configured sampler"
      in
      let* shard_cps =
        let rec load k acc =
          if k = cfg.shards then Ok (List.rev acc)
          else
            let* cp = Checkpoint.load (shard_file dir k) in
            if cp.Checkpoint.meta = meta then load (k + 1) (cp :: acc)
            else Error (Printf.sprintf "shard-%d.ftc metadata disagrees with router.ftc" k)
        in
        load 0 []
      in
      let config =
        {
          Detector.nthreads = meta.Checkpoint.nthreads;
          nlocks = meta.Checkpoint.nlocks;
          nlocs = meta.Checkpoint.nlocs;
          clock_size = meta.Checkpoint.clock_size;
          sampler = cfg.sampler;
        }
      in
      match
        Sharded.restore ~engine:cfg.engine ~shards:cfg.shards config
          ~router:router_cp.Checkpoint.detector
          (Array.of_list (List.map (fun cp -> cp.Checkpoint.detector) shard_cps))
      with
      | det -> Ok (det, meta)
      | exception Snap.Corrupt msg -> Error msg
    in
    (match outcome with
    | Ok r -> Some r
    | Error msg ->
      Printf.eprintf "racedet serve: cannot resume from %s (%s); starting fresh\n%!" dir
        msg;
      None)

let ensure_detector st (nthreads, nlocks, nlocs) =
  match (st.det, st.universe) with
  | Some det, Some u ->
    if u = (nthreads, nlocks, nlocs) then Ok det
    else Error "batch universe differs from the session's"
  | None, _ ->
    let clock_size =
      match st.cfg.clock_size with
      | None -> nthreads
      | Some s -> Stdlib.max s nthreads
    in
    let config = { Detector.nthreads; nlocks; nlocs; clock_size; sampler = st.cfg.sampler } in
    let det = Sharded.create ~engine:st.cfg.engine ~shards:st.cfg.shards config in
    st.det <- Some det;
    st.universe <- Some (nthreads, nlocks, nlocs);
    st.clock_size <- clock_size;
    Ok det
  | Some _, None -> assert false

let feed st det trace base =
  let n = Trace.length trace in
  (* skip any already-ingested prefix: resends are idempotent *)
  for i = Stdlib.max 0 (st.expected - base) to n - 1 do
    Sharded.handle det (base + i) (Trace.get trace i)
  done;
  st.expected <- Stdlib.max st.expected (base + n)

let rec drain_parked st det =
  let eligible =
    Hashtbl.fold
      (fun base _ acc ->
        if base <= st.expected then Some (match acc with None -> base | Some b -> Stdlib.min b base)
        else acc)
      st.parked None
  in
  match eligible with
  | None -> ()
  | Some base ->
    let trace = Hashtbl.find st.parked base in
    Hashtbl.remove st.parked base;
    feed st det trace base;
    drain_parked st det

let reply conn s = try write_all conn.fd s with Unix.Unix_error _ -> conn.closed <- true

let handle_batch st conn base payload =
  if base < 0 then reply conn "ERR negative base index\n"
  else
    match Trace_binary.of_bytes (Bytes.of_string payload) with
    | Error msg -> reply conn (Printf.sprintf "ERR bad batch: %s\n" msg)
    | Ok trace -> (
      let u = (trace.Trace.nthreads, trace.Trace.nlocks, trace.Trace.nlocs) in
      match ensure_detector st u with
      | Error msg -> reply conn (Printf.sprintf "ERR %s\n" msg)
      | Ok det -> (
        try
          if base > st.expected then
            if Hashtbl.length st.parked >= st.cfg.max_parked then
              reply conn "ERR parked batch limit exceeded\n"
            else begin
              Hashtbl.replace st.parked base trace;
              reply conn (Printf.sprintf "OK %d\n" st.expected)
            end
          else begin
            feed st det trace base;
            drain_parked st det;
            write_checkpoint st;
            reply conn (Printf.sprintf "OK %d\n" st.expected)
          end
        with Failure msg -> reply conn (Printf.sprintf "ERR %s\n" msg)))

let handle_line st conn line =
  match String.split_on_char ' ' (String.trim line) with
  | [ "BATCH"; base; nbytes ] -> (
    match (int_of_string_opt base, int_of_string_opt nbytes) with
    | Some b, Some n when n >= 0 -> conn.blob <- Some (b, n)
    | _ -> reply conn "ERR malformed BATCH header\n")
  | [ "REPORT" ] -> (
    match st.det with
    | None -> reply conn "ERR no events ingested\n"
    | Some det -> (
      try
        let text = report_text ~events:(Sharded.events det) (Sharded.result det) in
        reply conn (Printf.sprintf "REPORT %d\n%s" (String.length text) text)
      with Failure msg -> reply conn (Printf.sprintf "ERR %s\n" msg)))
  | [ "SHUTDOWN" ] ->
    write_checkpoint st;
    reply conn "BYE\n";
    st.quit <- true
  | [ "" ] -> ()
  | _ -> reply conn "ERR unknown command\n"

let rec process st conn =
  if not conn.closed then
    match conn.blob with
    | Some (base, nbytes) ->
      if String.length conn.data >= nbytes then begin
        let payload = String.sub conn.data 0 nbytes in
        conn.data <- String.sub conn.data nbytes (String.length conn.data - nbytes);
        conn.blob <- None;
        handle_batch st conn base payload;
        process st conn
      end
    | None -> (
      match String.index_opt conn.data '\n' with
      | None -> ()
      | Some nl ->
        let line = String.sub conn.data 0 nl in
        conn.data <- String.sub conn.data (nl + 1) (String.length conn.data - nl - 1);
        handle_line st conn line;
        process st conn)

let run cfg =
  if cfg.shards < 1 then invalid_arg "Serve.run: shards must be positive";
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  (try Unix.unlink cfg.socket with Unix.Unix_error _ -> ());
  let listen_fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind listen_fd (Unix.ADDR_UNIX cfg.socket);
  Unix.listen listen_fd 16;
  let st =
    {
      cfg;
      det = None;
      universe = None;
      clock_size = 0;
      expected = 0;
      parked = Hashtbl.create 16;
      quit = false;
    }
  in
  (match try_resume cfg with
  | None -> ()
  | Some (det, meta) ->
    st.det <- Some det;
    st.universe <-
      Some (meta.Checkpoint.nthreads, meta.Checkpoint.nlocks, meta.Checkpoint.nlocs);
    st.clock_size <- meta.Checkpoint.clock_size;
    st.expected <- meta.Checkpoint.next_index;
    Printf.eprintf "racedet serve: resumed at event %d\n%!" st.expected);
  let conns = ref [] in
  let chunk = Bytes.create 65536 in
  while not st.quit do
    let fds = listen_fd :: List.map (fun c -> c.fd) !conns in
    let readable, _, _ =
      try Unix.select fds [] [] 0.5
      with Unix.Unix_error (Unix.EINTR, _, _) -> ([], [], [])
    in
    if List.memq listen_fd readable then begin
      let fd, _ = Unix.accept listen_fd in
      conns := { fd; data = ""; blob = None; closed = false } :: !conns
    end;
    List.iter
      (fun c ->
        if (not c.closed) && List.memq c.fd readable then
          match Unix.read c.fd chunk 0 (Bytes.length chunk) with
          | 0 -> c.closed <- true
          | n ->
            c.data <- c.data ^ Bytes.sub_string chunk 0 n;
            process st c
          | exception Unix.Unix_error _ -> c.closed <- true)
      !conns;
    conns :=
      List.filter
        (fun c ->
          if c.closed then (try Unix.close c.fd with Unix.Unix_error _ -> ());
          not c.closed)
        !conns
  done;
  (match st.det with Some det -> Sharded.stop det | None -> ());
  List.iter (fun c -> try Unix.close c.fd with Unix.Unix_error _ -> ()) !conns;
  Unix.close listen_fd;
  try Unix.unlink cfg.socket with Unix.Unix_error _ -> ()

(* --- client side ---------------------------------------------------------- *)

let connect ?(retries = 100) path =
  let rec go n =
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    match Unix.connect fd (Unix.ADDR_UNIX path) with
    | () ->
      Unix.setsockopt_float fd Unix.SO_RCVTIMEO 30.0;
      fd
    | exception Unix.Unix_error ((Unix.ENOENT | Unix.ECONNREFUSED), _, _) when n > 0 ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      Unix.sleepf 0.05;
      go (n - 1)
  in
  go retries

let expect_line fd =
  match read_line_fd fd with
  | line -> Ok line
  | exception End_of_file -> Error "server closed the connection"
  | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)

let send_batch fd ~base trace =
  let payload = Trace_binary.to_bytes trace in
  match
    write_all fd (Printf.sprintf "BATCH %d %d\n" base (Bytes.length payload));
    write_all fd (Bytes.to_string payload)
  with
  | () -> (
    match expect_line fd with
    | Error _ as e -> e
    | Ok line -> (
      match String.split_on_char ' ' line with
      | [ "OK"; total ] -> (
        match int_of_string_opt total with
        | Some t -> Ok t
        | None -> Error ("malformed reply: " ^ line))
      | _ -> Error line))
  | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)

let fetch_report fd =
  match write_all fd "REPORT\n" with
  | () -> (
    match expect_line fd with
    | Error _ as e -> e
    | Ok line -> (
      match String.split_on_char ' ' line with
      | [ "REPORT"; nbytes ] -> (
        match int_of_string_opt nbytes with
        | Some n -> (
          try Ok (really_read fd n) with
          | End_of_file -> Error "truncated report"
          | Unix.Unix_error (e, _, _) -> Error (Unix.error_message e))
        | None -> Error ("malformed reply: " ^ line))
      | _ -> Error line))
  | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)

let shutdown fd =
  match write_all fd "SHUTDOWN\n" with
  | () -> (
    match expect_line fd with
    | Ok "BYE" -> Ok ()
    | Ok line -> Error line
    | Error _ as e -> e)
  | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)

let close fd = try Unix.close fd with Unix.Unix_error _ -> ()
