(** Wire codec for cluster sub-streams (router → worker) and worker partial
    results (worker → router).

    A cluster batch is a varint-encoded message array prefixed by the trace
    universe, carried by the [CBATCH <seq> <nbytes>] command where [seq] is
    the dense per-worker sequence number of the first message.  Events keep
    their original {e global} indices: every sampling strategy is a pure
    function of the index or of per-location state, and the router
    partitions locations whole, so each worker's own sampler replays
    exactly the global run's decisions (DESIGN.md §6e). *)

type msg =
  | Ev of int * Ft_trace.Event.t
      (** an event this worker owns (accesses) or must see (sync), tagged
          with its original global index *)
  | Mark of Ft_trace.Event.tid
      (** a false→true pending-bit transition whose triggering access is
          owned by another worker — applied via {!Sharded.note_sampled} *)

val op_tag : Ft_trace.Event.op -> int
(** Stable wire tag of an event operation — shared with the cluster
    router's WAL so both codecs agree byte-for-byte. *)

val op_operand : Ft_trace.Event.op -> int

val op_of : tag:int -> operand:int -> Ft_trace.Event.op
(** Inverse of {!op_tag}/{!op_operand}; raises {!Ft_core.Snap.Corrupt} on an
    unknown tag. *)

val encode :
  nthreads:int -> nlocks:int -> nlocs:int -> msg array -> off:int -> len:int -> string
(** Encode the slice [\[off, off+len)] of a routed-message log. *)

val decode : string -> ((int * int * int) * msg array, string) result
(** [(nthreads, nlocks, nlocs), messages]; total — malformed input is an
    [Error], never an exception or oversized allocation. *)

val encode_result : Ft_core.Detector.result -> string
(** Worker partial result for the [RESULT] command: engine name, race list
    (original indices) and internally merged metrics. *)

val decode_result : string -> (Ft_core.Detector.result, string) result
