type t = {
  mutable buf : bytes;
  mutable start : int;  (* first unconsumed byte *)
  mutable stop : int;  (* one past the last valid byte *)
  mutable copied : int;  (* total bytes ever moved by blits *)
}

let create ?(capacity = 64 * 1024) () =
  { buf = Bytes.create (Stdlib.max 16 capacity); start = 0; stop = 0; copied = 0 }

let length b = b.stop - b.start
let copied b = b.copied

(* Make room for [extra] more bytes.  Compaction is only allowed once at
   least half the array is dead prefix — each compacted byte is then paid
   for by a consumed one, which is what keeps the total bytes moved linear
   in the bytes that pass through (the O(n²) accumulate-by-concatenation
   this module replaces had no such bound).  Otherwise the array doubles,
   which both compacts and keeps occupancy ≥ 25%. *)
let reserve b extra =
  let live = length b in
  let cap = Bytes.length b.buf in
  if b.stop + extra > cap then
    if live + extra <= cap && b.start >= cap / 2 then begin
      Bytes.blit b.buf b.start b.buf 0 live;
      b.copied <- b.copied + live;
      b.start <- 0;
      b.stop <- live
    end
    else begin
      let cap' = ref (Stdlib.max 16 (2 * cap)) in
      while live + extra > !cap' do
        cap' := 2 * !cap'
      done;
      let buf' = Bytes.create !cap' in
      Bytes.blit b.buf b.start buf' 0 live;
      b.copied <- b.copied + live;
      b.buf <- buf';
      b.start <- 0;
      b.stop <- live
    end

let append b src ~off ~len =
  if len < 0 || off < 0 || off + len > Bytes.length src then
    invalid_arg "Netbuf.append: slice out of range";
  reserve b len;
  Bytes.blit src off b.buf b.stop len;
  b.copied <- b.copied + len;
  b.stop <- b.stop + len

let index_newline b =
  match Bytes.index_from_opt b.buf b.start '\n' with
  | Some i when i < b.stop -> Some (i - b.start)
  | Some _ | None -> None

let consume b n =
  b.start <- b.start + n;
  if b.start = b.stop then begin
    b.start <- 0;
    b.stop <- 0
  end

let take b n =
  if n < 0 || n > length b then invalid_arg "Netbuf.take: beyond buffered data";
  let s = Bytes.sub_string b.buf b.start n in
  consume b n;
  s

let drop b n =
  if n < 0 || n > length b then invalid_arg "Netbuf.drop: beyond buffered data";
  consume b n
