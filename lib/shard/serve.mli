(** The [racedet serve] ingestion daemon and its client side.

    A server listens on a Unix-domain socket or a TCP address and feeds a
    {!Sharded} detector from event batches pushed by any number of client
    processes.  The wire protocol is line-framed with binary payloads:

    {v
    client → server                      server → client
    BATCH <base> <nbytes>\n  <.ftb blob> OK <total>\n   |  ERR <reason>\n
    CBATCH <seq> <nbytes>\n  <cluster>   OK <total>\n   |  ERR <reason>\n
    REPORT\n                             REPORT <nbytes>\n <report text>
    RESULT\n                             RESULT <nbytes>\n <partial result>
    SEQ\n                                SEQ <n>\n
    STATS\n                              STATS <nbytes>\n <Prometheus text>
    STATS JSON\n                         STATS <nbytes>\n <JSON document>
    SHUTDOWN\n                           BYE\n
    v}

    Every batch is a complete .ftb file (header + events) whose header
    declares the shared universe; [base] is the {e global} index of the
    batch's first event.  Explicit bases make multi-client ingestion
    deterministic: the server ingests strictly in index order, parking
    batches that arrive early (bounded) and skipping already-ingested
    prefixes idempotently — so a client may blindly resend after a crash.
    [OK <total>] reports how many events have been ingested so far.

    [CBATCH]/[RESULT]/[SEQ] are the cluster-worker face of the same daemon
    (see {!Cmsg} and DESIGN.md §6e): a {!Ft_cluster} router streams
    consistent-hash sub-streams of routed messages, sequenced by a dense
    per-worker counter, and merges the workers' [RESULT] blobs.  A session
    speaks either [BATCH] or [CBATCH], fixed by the first ingested batch;
    mixing them is refused.  [CBATCH] does not park — the router is the
    only client and sends in order — but resent prefixes are skipped
    idempotently, which is what makes post-recovery replay exact.

    [STATS] snapshots the daemon's telemetry ({!Ft_obs.Registry}): ingest
    counters (batches fed / parked / duplicate / resent, events), per-batch
    ingest-latency histogram (p50/p90/p99/max), per-shard ring occupancy
    and routed-event throughput, connection counts, and the merged detector
    {!Ft_core.Metrics} — as Prometheus text exposition or as one JSON
    document.  Counters are monotone across successive queries; answering
    [STATS] flushes the shard rings (like [REPORT]) so the merged metrics
    are a consistent prefix snapshot.  Instrumentation is confined to batch
    and command boundaries and never touches the per-event detection loop,
    so [REPORT] output stays byte-identical to [racedet analyze].

    With a checkpoint directory the server persists, after every ingested
    batch {e before acknowledging it} and on shutdown, one [.ftc] per shard
    ([shard-<k>.ftc]) plus [router.ftc] (pending bits, router sampler
    state, sync-only baseline) — the {!Ft_snapshot.Checkpoint} container,
    so each file is individually checksummed and written atomically.
    Checkpoint-before-OK means an acknowledged batch is durable, which is
    the invariant the cluster router's recovery protocol builds on.  A
    restarted server pointed at the directory resumes exactly; if the set
    is missing or inconsistent it logs the reason and starts fresh, which
    is still correct because clients resend idempotently.

    {2 Robustness}

    The daemon's sharded detector runs {e supervised}
    ({!Sharded.create}[ ~supervise:true]): a shard worker that dies is
    rebuilt from its last published snapshot and its backlog replayed, so
    verdicts are unaffected; a shard past its restart budget
    ([max_restarts]) fails the daemon fast with a non-zero exit, leaving
    the last good checkpoint set on disk for a replacement server to
    resume from.  [SIGTERM] and [SIGINT] trigger the same graceful path as
    a [SHUTDOWN] command — drain the rings, write a final checkpoint set,
    dump [metrics_json] — even when the signal lands inside [accept] or a
    blocking read (both are EINTR-guarded).  A [chaos] config arms the
    deterministic fault-injection layer ({!Ft_fault.Fault}) over the
    daemon's injection points ([serve.recv], [shard.step], [spsc.push],
    [checkpoint.write]) and reports fired faults through the
    [racedet_faults_injected] / [racedet_shard_restarts] counters and a
    shutdown summary line. *)

(** {1 Transport addresses} *)

type addr =
  | Unix_path of string  (** Unix-domain socket path *)
  | Tcp of string * int  (** host (name or dotted quad) and port; port 0 binds ephemeral *)

val addr_to_string : addr -> string
(** ["unix:PATH"] / ["tcp:HOST:PORT"] — the ready-file format. *)

val addr_of_string : string -> (addr, string) result
(** Inverse of {!addr_to_string}; a bare string with no scheme prefix is a
    Unix path (backwards compatible with plain socket paths). *)

val tcp_of_string : string -> (addr, string) result
(** ["HOST:PORT"] → [Tcp] (the [--tcp] argument format). *)

val listen_socket : ?backlog:int -> addr -> Unix.file_descr * addr
(** Bind + listen (close-on-exec), returning the {e actual} address — a TCP
    bind to port 0 resolves to the kernel-chosen port.  For a Unix path the
    stale socket file of a crashed server is unlinked, but a path with a
    {e live} listener (probed with a connect) raises [Failure] instead of
    silently orphaning the running server. *)

val write_addr_file : string -> addr -> unit
(** Atomically (write + rename) publish an address, one
    {!addr_to_string} line — how a server started on an ephemeral port
    advertises itself ([ready_file]). *)

val read_addr_file : string -> (addr, string) result

val default_backlog : int
(** Default listen(2) backlog, 128. *)

type config = {
  listen : addr;
  engine : Ft_core.Engine.id;
  shards : int;
  sampler : Ft_core.Sampler.t;
  clock_size : int option;  (** default: the batch universe's thread count *)
  checkpoint_dir : string option;
  checkpoint_every : int;
      (** ingested batches between checkpoint sets
          ({!default_checkpoint_every} = 1: every batch, ack ⇒ durable — the
          standalone-daemon contract).  A cluster worker is spawned with its
          router's window here: the router's WAL already makes acknowledged
          client batches durable, so the worker checkpoint is only a bound
          on post-crash replay, and per-CBATCH fsyncs across K workers
          would serialize the whole cluster on the disk.  The shutdown
          checkpoint is unconditional regardless. *)
  resume_dir : string option;
  max_parked : int;  (** bound on batches parked for reordering *)
  backlog : int;  (** listen(2) backlog ({!default_backlog}) *)
  ready_file : string option;
      (** publish the actual listen address here once bound (atomic
          write + rename) — how callers learn an ephemeral TCP port *)
  heartbeat_s : float option;
      (** period of the one-line stderr telemetry heartbeat; [None] (or a
          non-positive period) disables it.  The heartbeat reads only
          router-side counters — it never flushes the shard rings. *)
  metrics_json : string option;
      (** write the full telemetry + merged-metrics JSON document (the
          [STATS JSON] payload) to this file on shutdown *)
  max_restarts : int;
      (** per-shard supervisor restart budget before the daemon fails fast
          ({!default_max_restarts}) *)
  chaos : Ft_fault.Fault.config option;
      (** arm this fault-injection schedule at startup ([--chaos]) *)
}

val default_max_parked : int
val default_checkpoint_every : int
val default_max_restarts : int

val default_deadline_s : float
(** Overall per-operation client deadline (30 s) used when [?deadline_s]
    is omitted. *)

val run : config -> unit
(** Serve until a client sends [SHUTDOWN] or the process receives
    [SIGTERM]/[SIGINT] (both shut down gracefully: final checkpoint +
    metrics dump).  Refuses to start when [listen] is a Unix path with a
    live listener; removes the socket file on exit.  Blocking; spawns the
    shard domains — call it from a dedicated (child) process.  Raises
    [Failure] after cleanup if a shard exhausted its restart budget (the
    CLI turns that into a non-zero exit). *)

val report_text : events:int -> Ft_core.Detector.result -> string
(** The analysis report, byte-identical to [racedet analyze]'s output —
    both the CLI and the daemon render through this one function, which is
    what the serve-vs-analyze smoke diffs rely on. *)

val metrics_json_value : Ft_core.Metrics.t -> Ft_obs.Json.t
(** The merged work counters as one flat JSON object, zipping
    {!Ft_core.Metrics.field_names} with [to_array] so a future counter
    cannot be silently dropped from the export. *)

(** {1 Client side}

    Every receive loop retries [EINTR] (signals) and [EAGAIN] (the
    descriptor's receive timeout firing mid-transfer — a slow or busy
    server trickling out a large blob) and fails only once an {e overall}
    per-operation deadline has passed ([?deadline_s], default
    {!default_deadline_s}).  The per-descriptor timeout set by {!connect}
    is just the poll granularity of that deadline check. *)

val connect :
  ?recv_timeout_s:float -> ?deadline_s:float -> ?seed:int -> addr -> Unix.file_descr
(** Connect, retrying with capped exponential backoff (10 ms doubling to
    0.8 s, plus deterministic jitter from {!Ft_support.Prng} seeded by
    [?seed]) while the address does not exist yet or refuses — covers the
    race with server startup without hammering a slow one.  Gives up once
    the next attempt would land past [?deadline_s]
    (default {!default_deadline_s}) of wall time, re-raising the last
    connect error.  [recv_timeout_s] (default 0.25) is the per-[read]
    wakeup used to check operation deadlines; it is {e not} the failure
    timeout. *)

val connect_stats :
  ?recv_timeout_s:float ->
  ?deadline_s:float ->
  ?seed:int ->
  addr ->
  Unix.file_descr * int
(** Like {!connect}, additionally returning how many attempts the backoff
    loop made (1 = connected first try) — surfaced by
    [racedet emit --stats]. *)

val send_batch :
  ?deadline_s:float -> Unix.file_descr -> base:int -> Ft_trace.Trace.t -> (int, string) result
(** Encode the batch as .ftb and send it; [Ok total] echoes the server's
    ingested-events count. *)

val send_cbatch :
  ?deadline_s:float -> Unix.file_descr -> seq:int -> string -> (int, string) result
(** Send an already-encoded {!Cmsg} cluster batch; [Ok total] echoes the
    worker's message count ([seq + messages] once ingested). *)

val send_cbatch_nowait : Unix.file_descr -> seq:int -> string -> unit
(** The write half of {!send_cbatch} only — the ack is collected
    asynchronously (the router's pipelined in-flight window).  Raises
    [Unix.Unix_error] on write failure instead of returning [Error]: the
    caller owns worker recovery. *)

val fetch_report : ?deadline_s:float -> Unix.file_descr -> (string, string) result

val fetch_result :
  ?deadline_s:float -> Unix.file_descr -> (Ft_core.Detector.result, string) result
(** The worker's decoded partial result ([RESULT]). *)

val fetch_seq : ?deadline_s:float -> Unix.file_descr -> (int, string) result
(** The session's stream position ([SEQ]) — the router's replay point after
    respawning a worker. *)

val fetch_stats :
  ?deadline_s:float ->
  ?format:[ `Prometheus | `Json ] ->
  Unix.file_descr ->
  (string, string) result
(** The [STATS] payload (default [`Prometheus]). *)

val shutdown : ?deadline_s:float -> Unix.file_descr -> (unit, string) result

val migrate : ?deadline_s:float -> Unix.file_descr -> int -> (unit, string) result
(** Ask a {e router} to checkpoint-migrate worker [k] onto a fresh process
    ([MIGRATE <k>]); an [ERR] reply is returned as [Error]. *)

val resize : ?deadline_s:float -> Unix.file_descr -> int -> (int, string) result
(** Ask a {e router} to resize its worker ring by [delta] ∈ {[+1], [-1]}
    ([RESIZE +1] / [RESIZE -1]); [Ok k] echoes the new worker count. *)

val addr_alive : addr -> bool
(** One connect probe: is something accepting on this address right now?
    Generalizes the Unix-socket staleness check to TCP — how the router
    decides whether an existing [--ready-file] points at a live listener
    (refuse) or a crashed one (remove and take over). *)

val close : Unix.file_descr -> unit
