(** The [racedet serve] ingestion daemon and its client side.

    A server listens on a Unix-domain socket and feeds a {!Sharded} detector
    from event batches pushed by any number of client processes.  The wire
    protocol is line-framed with binary payloads:

    {v
    client → server                      server → client
    BATCH <base> <nbytes>\n  <.ftb blob> OK <total>\n   |  ERR <reason>\n
    REPORT\n                             REPORT <nbytes>\n <report text>
    STATS\n                              STATS <nbytes>\n <Prometheus text>
    STATS JSON\n                         STATS <nbytes>\n <JSON document>
    SHUTDOWN\n                           BYE\n
    v}

    Every batch is a complete .ftb file (header + events) whose header
    declares the shared universe; [base] is the {e global} index of the
    batch's first event.  Explicit bases make multi-client ingestion
    deterministic: the server ingests strictly in index order, parking
    batches that arrive early (bounded) and skipping already-ingested
    prefixes idempotently — so a client may blindly resend after a crash.
    [OK <total>] reports how many events have been ingested so far.

    [STATS] snapshots the daemon's telemetry ({!Ft_obs.Registry}): ingest
    counters (batches fed / parked / duplicate / resent, events), per-batch
    ingest-latency histogram (p50/p90/p99/max), per-shard ring occupancy
    and routed-event throughput, connection counts, and the merged detector
    {!Ft_core.Metrics} — as Prometheus text exposition or as one JSON
    document.  Counters are monotone across successive queries; answering
    [STATS] flushes the shard rings (like [REPORT]) so the merged metrics
    are a consistent prefix snapshot.  Instrumentation is confined to batch
    and command boundaries and never touches the per-event detection loop,
    so [REPORT] output stays byte-identical to [racedet analyze].

    With a checkpoint directory the server persists, after every ingested
    batch and on shutdown, one [.ftc] per shard ([shard-<k>.ftc]) plus
    [router.ftc] (pending bits, router sampler state, sync-only baseline) —
    the {!Ft_snapshot.Checkpoint} container, so each file is individually
    checksummed and written atomically.  A restarted server pointed at the
    directory resumes exactly; if the set is missing or inconsistent it
    logs the reason and starts fresh, which is still correct because
    clients resend idempotently.

    {2 Robustness}

    The daemon's sharded detector runs {e supervised}
    ({!Sharded.create}[ ~supervise:true]): a shard worker that dies is
    rebuilt from its last published snapshot and its backlog replayed, so
    verdicts are unaffected; a shard past its restart budget
    ([max_restarts]) fails the daemon fast with a non-zero exit, leaving
    the last good checkpoint set on disk for a replacement server to
    resume from.  [SIGTERM] and [SIGINT] trigger the same graceful path as
    a [SHUTDOWN] command: drain the rings, write a final checkpoint set,
    dump [metrics_json].  A [chaos] config arms the deterministic
    fault-injection layer ({!Ft_fault.Fault}) over the daemon's injection
    points ([serve.recv], [shard.step], [spsc.push], [checkpoint.write])
    and reports fired faults through the [racedet_faults_injected] /
    [racedet_shard_restarts] counters and a shutdown summary line. *)

type config = {
  socket : string;  (** Unix-domain socket path *)
  engine : Ft_core.Engine.id;
  shards : int;
  sampler : Ft_core.Sampler.t;
  clock_size : int option;  (** default: the batch universe's thread count *)
  checkpoint_dir : string option;
  resume_dir : string option;
  max_parked : int;  (** bound on batches parked for reordering *)
  heartbeat_s : float option;
      (** period of the one-line stderr telemetry heartbeat; [None] (or a
          non-positive period) disables it.  The heartbeat reads only
          router-side counters — it never flushes the shard rings. *)
  metrics_json : string option;
      (** write the full telemetry + merged-metrics JSON document (the
          [STATS JSON] payload) to this file on shutdown *)
  max_restarts : int;
      (** per-shard supervisor restart budget before the daemon fails fast
          ({!default_max_restarts}) *)
  chaos : Ft_fault.Fault.config option;
      (** arm this fault-injection schedule at startup ([--chaos]) *)
}

val default_max_parked : int
val default_max_restarts : int

val default_deadline_s : float
(** Overall per-operation client deadline (30 s) used when [?deadline_s]
    is omitted. *)

val run : config -> unit
(** Serve until a client sends [SHUTDOWN] or the process receives
    [SIGTERM]/[SIGINT] (both shut down gracefully: final checkpoint +
    metrics dump).  Creates the socket (replacing a stale file), removes it
    on exit.  Blocking; spawns the shard domains — call it from a dedicated
    (child) process.  Raises [Failure] after cleanup if a shard exhausted
    its restart budget (the CLI turns that into a non-zero exit). *)

val report_text : events:int -> Ft_core.Detector.result -> string
(** The analysis report, byte-identical to [racedet analyze]'s output —
    both the CLI and the daemon render through this one function, which is
    what the serve-vs-analyze smoke diffs rely on. *)

val metrics_json_value : Ft_core.Metrics.t -> Ft_obs.Json.t
(** The merged work counters as one flat JSON object, zipping
    {!Ft_core.Metrics.field_names} with [to_array] so a future counter
    cannot be silently dropped from the export. *)

(** {1 Client side}

    Every receive loop retries [EINTR] (signals) and [EAGAIN] (the
    descriptor's receive timeout firing mid-transfer — a slow or busy
    server trickling out a large blob) and fails only once an {e overall}
    per-operation deadline has passed ([?deadline_s], default
    {!default_deadline_s}).  The per-descriptor timeout set by {!connect}
    is just the poll granularity of that deadline check. *)

val connect :
  ?recv_timeout_s:float -> ?deadline_s:float -> ?seed:int -> string -> Unix.file_descr
(** Connect, retrying with capped exponential backoff (10 ms doubling to
    0.8 s, plus deterministic jitter from {!Ft_support.Prng} seeded by
    [?seed]) while the socket does not exist yet or refuses — covers the
    race with server startup without hammering a slow one.  Gives up once
    the next attempt would land past [?deadline_s]
    (default {!default_deadline_s}) of wall time, re-raising the last
    connect error.  [recv_timeout_s] (default 0.25) is the per-[read]
    wakeup used to check operation deadlines; it is {e not} the failure
    timeout. *)

val connect_stats :
  ?recv_timeout_s:float ->
  ?deadline_s:float ->
  ?seed:int ->
  string ->
  Unix.file_descr * int
(** Like {!connect}, additionally returning how many attempts the backoff
    loop made (1 = connected first try) — surfaced by
    [racedet emit --stats]. *)

val send_batch :
  ?deadline_s:float -> Unix.file_descr -> base:int -> Ft_trace.Trace.t -> (int, string) result
(** Encode the batch as .ftb and send it; [Ok total] echoes the server's
    ingested-events count. *)

val fetch_report : ?deadline_s:float -> Unix.file_descr -> (string, string) result

val fetch_stats :
  ?deadline_s:float ->
  ?format:[ `Prometheus | `Json ] ->
  Unix.file_descr ->
  (string, string) result
(** The [STATS] payload (default [`Prometheus]). *)

val shutdown : ?deadline_s:float -> Unix.file_descr -> (unit, string) result

val close : Unix.file_descr -> unit
