(** The [racedet serve] ingestion daemon and its client side.

    A server listens on a Unix-domain socket and feeds a {!Sharded} detector
    from event batches pushed by any number of client processes.  The wire
    protocol is line-framed with binary payloads:

    {v
    client → server                      server → client
    BATCH <base> <nbytes>\n  <.ftb blob> OK <total>\n   |  ERR <reason>\n
    REPORT\n                             REPORT <nbytes>\n <report text>
    STATS\n                              STATS <nbytes>\n <Prometheus text>
    STATS JSON\n                         STATS <nbytes>\n <JSON document>
    SHUTDOWN\n                           BYE\n
    v}

    Every batch is a complete .ftb file (header + events) whose header
    declares the shared universe; [base] is the {e global} index of the
    batch's first event.  Explicit bases make multi-client ingestion
    deterministic: the server ingests strictly in index order, parking
    batches that arrive early (bounded) and skipping already-ingested
    prefixes idempotently — so a client may blindly resend after a crash.
    [OK <total>] reports how many events have been ingested so far.

    [STATS] snapshots the daemon's telemetry ({!Ft_obs.Registry}): ingest
    counters (batches fed / parked / duplicate / resent, events), per-batch
    ingest-latency histogram (p50/p90/p99/max), per-shard ring occupancy
    and routed-event throughput, connection counts, and the merged detector
    {!Ft_core.Metrics} — as Prometheus text exposition or as one JSON
    document.  Counters are monotone across successive queries; answering
    [STATS] flushes the shard rings (like [REPORT]) so the merged metrics
    are a consistent prefix snapshot.  Instrumentation is confined to batch
    and command boundaries and never touches the per-event detection loop,
    so [REPORT] output stays byte-identical to [racedet analyze].

    With a checkpoint directory the server persists, after every ingested
    batch and on shutdown, one [.ftc] per shard ([shard-<k>.ftc]) plus
    [router.ftc] (pending bits, router sampler state, sync-only baseline) —
    the {!Ft_snapshot.Checkpoint} container, so each file is individually
    checksummed and written atomically.  A restarted server pointed at the
    directory resumes exactly; if the set is missing or inconsistent it
    logs the reason and starts fresh, which is still correct because
    clients resend idempotently. *)

type config = {
  socket : string;  (** Unix-domain socket path *)
  engine : Ft_core.Engine.id;
  shards : int;
  sampler : Ft_core.Sampler.t;
  clock_size : int option;  (** default: the batch universe's thread count *)
  checkpoint_dir : string option;
  resume_dir : string option;
  max_parked : int;  (** bound on batches parked for reordering *)
  heartbeat_s : float option;
      (** period of the one-line stderr telemetry heartbeat; [None] (or a
          non-positive period) disables it.  The heartbeat reads only
          router-side counters — it never flushes the shard rings. *)
  metrics_json : string option;
      (** write the full telemetry + merged-metrics JSON document (the
          [STATS JSON] payload) to this file on shutdown *)
}

val default_max_parked : int

val default_deadline_s : float
(** Overall per-operation client deadline (30 s) used when [?deadline_s]
    is omitted. *)

val run : config -> unit
(** Serve until a client sends [SHUTDOWN].  Creates the socket (replacing a
    stale file), removes it on exit.  Blocking; spawns the shard domains —
    call it from a dedicated (child) process. *)

val report_text : events:int -> Ft_core.Detector.result -> string
(** The analysis report, byte-identical to [racedet analyze]'s output —
    both the CLI and the daemon render through this one function, which is
    what the serve-vs-analyze smoke diffs rely on. *)

val metrics_json_value : Ft_core.Metrics.t -> Ft_obs.Json.t
(** The merged work counters as one flat JSON object, zipping
    {!Ft_core.Metrics.field_names} with [to_array] so a future counter
    cannot be silently dropped from the export. *)

(** {1 Client side}

    Every receive loop retries [EINTR] (signals) and [EAGAIN] (the
    descriptor's receive timeout firing mid-transfer — a slow or busy
    server trickling out a large blob) and fails only once an {e overall}
    per-operation deadline has passed ([?deadline_s], default
    {!default_deadline_s}).  The per-descriptor timeout set by {!connect}
    is just the poll granularity of that deadline check. *)

val connect : ?retries:int -> ?recv_timeout_s:float -> string -> Unix.file_descr
(** Connect, retrying (50 ms apart, default 100 attempts) while the socket
    does not exist yet or refuses — covers the race with server startup.
    [recv_timeout_s] (default 0.25) is the per-[read] wakeup used to check
    operation deadlines; it is {e not} the failure timeout. *)

val send_batch :
  ?deadline_s:float -> Unix.file_descr -> base:int -> Ft_trace.Trace.t -> (int, string) result
(** Encode the batch as .ftb and send it; [Ok total] echoes the server's
    ingested-events count. *)

val fetch_report : ?deadline_s:float -> Unix.file_descr -> (string, string) result

val fetch_stats :
  ?deadline_s:float ->
  ?format:[ `Prometheus | `Json ] ->
  Unix.file_descr ->
  (string, string) result
(** The [STATS] payload (default [`Prometheus]). *)

val shutdown : ?deadline_s:float -> Unix.file_descr -> (unit, string) result

val close : Unix.file_descr -> unit
