(** The [racedet serve] ingestion daemon and its client side.

    A server listens on a Unix-domain socket and feeds a {!Sharded} detector
    from event batches pushed by any number of client processes.  The wire
    protocol is line-framed with binary payloads:

    {v
    client → server                      server → client
    BATCH <base> <nbytes>\n  <.ftb blob> OK <total>\n   |  ERR <reason>\n
    REPORT\n                             REPORT <nbytes>\n <report text>
    SHUTDOWN\n                           BYE\n
    v}

    Every batch is a complete .ftb file (header + events) whose header
    declares the shared universe; [base] is the {e global} index of the
    batch's first event.  Explicit bases make multi-client ingestion
    deterministic: the server ingests strictly in index order, parking
    batches that arrive early (bounded) and skipping already-ingested
    prefixes idempotently — so a client may blindly resend after a crash.
    [OK <total>] reports how many events have been ingested so far.

    With a checkpoint directory the server persists, after every ingested
    batch and on shutdown, one [.ftc] per shard ([shard-<k>.ftc]) plus
    [router.ftc] (pending bits, router sampler state, sync-only baseline) —
    the {!Ft_snapshot.Checkpoint} container, so each file is individually
    checksummed and written atomically.  A restarted server pointed at the
    directory resumes exactly; if the set is missing or inconsistent it
    logs the reason and starts fresh, which is still correct because
    clients resend idempotently. *)

type config = {
  socket : string;  (** Unix-domain socket path *)
  engine : Ft_core.Engine.id;
  shards : int;
  sampler : Ft_core.Sampler.t;
  clock_size : int option;  (** default: the batch universe's thread count *)
  checkpoint_dir : string option;
  resume_dir : string option;
  max_parked : int;  (** bound on batches parked for reordering *)
}

val default_max_parked : int

val run : config -> unit
(** Serve until a client sends [SHUTDOWN].  Creates the socket (replacing a
    stale file), removes it on exit.  Blocking; spawns the shard domains —
    call it from a dedicated (child) process. *)

val report_text : events:int -> Ft_core.Detector.result -> string
(** The analysis report, byte-identical to [racedet analyze]'s output —
    both the CLI and the daemon render through this one function, which is
    what the serve-vs-analyze smoke diffs rely on. *)

(** {1 Client side} *)

val connect : ?retries:int -> string -> Unix.file_descr
(** Connect, retrying (50 ms apart, default 100 attempts) while the socket
    does not exist yet or refuses — covers the race with server startup.
    The returned descriptor has a receive timeout set, so a wedged server
    surfaces as [Unix_error (EAGAIN, _, _)] rather than a hang. *)

val send_batch :
  Unix.file_descr -> base:int -> Ft_trace.Trace.t -> (int, string) result
(** Encode the batch as .ftb and send it; [Ok total] echoes the server's
    ingested-events count. *)

val fetch_report : Unix.file_descr -> (string, string) result

val shutdown : Unix.file_descr -> (unit, string) result

val close : Unix.file_descr -> unit
