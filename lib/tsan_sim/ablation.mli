(** Ablation studies backing the design choices DESIGN.md calls out.

    - {!engines_table}: every engine on one workload — shows the ordering
      DJIT+ > FastTrack ≳ FastTrack-TC ≫ ST > SU > SL > SO under sampling,
      and that tree clocks, optimal for full HB, do not help the sampling
      partial order (paper §7);
    - {!clock_sweep}: the same engines as the vector-clock width T grows —
      the O(|S|·T²) vs O(|S|·T) separation;
    - {!lock_sweep}: clock operations as the number of locks L grows — the
      O(|S|·T(T+L)) (SU) vs O(|S|·T) (SO) separation of Lemmas 7 and 8;
    - {!sampler_table}: detection recall and cost across sampling
      strategies (Bernoulli, Pacer-style windows, LiteRace-style cold
      regions) — the Analysis Problem is agnostic to how S is chosen (§3).

    Every table accepts [?jobs] (default 1 = inline sequential): its
    independent cells fan out over that many domains, and rows are
    reassembled by task index, so non-timing columns are identical for any
    [jobs].  Timing columns contend for cores under [jobs > 1] — keep
    [jobs = 1] when the milliseconds matter.  A crashed cell raises
    [Failure] (an incomplete ablation table would be misleading). *)

val engines_table :
  ?repeats:int -> ?seed:int -> ?rate:float -> ?clock_size:int -> ?jobs:int ->
  target_events:int -> unit -> string

val clock_sweep :
  ?repeats:int -> ?seed:int -> ?rate:float -> ?sizes:int list -> ?jobs:int ->
  target_events:int -> unit -> string

val lock_sweep :
  ?seed:int -> ?rate:float -> ?stripes:int list -> ?jobs:int -> target_events:int -> unit ->
  string

val sampler_table :
  ?seed:int -> ?clock_size:int -> ?jobs:int -> target_events:int -> unit -> string
