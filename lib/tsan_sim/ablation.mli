(** Ablation studies backing the design choices DESIGN.md calls out.

    - {!engines_table}: every engine on one workload — shows the ordering
      DJIT+ > FastTrack ≳ FastTrack-TC ≫ ST > SU > SL > SO under sampling,
      and that tree clocks, optimal for full HB, do not help the sampling
      partial order (paper §7);
    - {!clock_sweep}: the same engines as the vector-clock width T grows —
      the O(|S|·T²) vs O(|S|·T) separation;
    - {!lock_sweep}: clock operations as the number of locks L grows — the
      O(|S|·T(T+L)) (SU) vs O(|S|·T) (SO) separation of Lemmas 7 and 8;
    - {!sampler_table}: detection recall and cost across sampling
      strategies (Bernoulli, Pacer-style windows, LiteRace-style cold
      regions) — the Analysis Problem is agnostic to how S is chosen (§3). *)

val engines_table :
  ?repeats:int -> ?seed:int -> ?rate:float -> ?clock_size:int -> target_events:int -> unit ->
  string

val clock_sweep :
  ?repeats:int -> ?seed:int -> ?rate:float -> ?sizes:int list -> target_events:int -> unit ->
  string

val lock_sweep :
  ?seed:int -> ?rate:float -> ?stripes:int list -> target_events:int -> unit -> string

val sampler_table :
  ?seed:int -> ?clock_size:int -> target_events:int -> unit -> string
