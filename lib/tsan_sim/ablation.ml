module Engine = Ft_core.Engine
module Detector = Ft_core.Detector
module Sampler = Ft_core.Sampler
module Metrics = Ft_core.Metrics
module Db_sim = Ft_workloads.Db_sim
module Trace = Ft_trace.Trace
module Tabulate = Ft_support.Tabulate
module Clock = Ft_support.Clock

(* Monotonic clock, not wall time: an NTP step mid-run must not be able to
   produce a negative or skewed latency sample. *)
let time_best ~repeats f =
  let best = ref infinity in
  for _ = 1 to repeats do
    let t0 = Clock.now_ns () in
    ignore (Sys.opaque_identity (f ()));
    let dt = Clock.elapsed_s ~since:t0 in
    if dt < !best then best := dt
  done;
  !best

let tpcc () = Option.get (Db_sim.profile "tpcc")

let all_engines =
  [ Engine.Djit; Engine.Fasttrack; Engine.Fasttrack_tc; Engine.St; Engine.Su; Engine.Sn;
    Engine.Sl; Engine.So; Engine.O1; Engine.O1u ]

(* Each table fans its independent cells out over [jobs] domains (default 1
   = inline sequential).  Rows are assembled from results keyed by task
   index, so every table is identical to the sequential one — except the
   timing columns under [jobs > 1], where concurrent cells contend for
   cores. *)
let par_cells ?jobs f tasks =
  List.map Ft_par.get_exn (Ft_par.map_list ?jobs f tasks)

let engines_table ?(repeats = 3) ?(seed = 1) ?(rate = 0.03) ?(clock_size = 64) ?jobs
    ~target_events () =
  let trace = Db_sim.generate (tpcc ()) ~seed ~target_events in
  let sampler = Sampler.bernoulli ~rate ~seed in
  let rows =
    par_cells ?jobs
      (fun engine ->
        let result = Engine.run_instrumented engine ~sampler ~clock_size trace in
        let t =
          time_best ~repeats (fun () ->
              Engine.run_instrumented engine ~sampler ~clock_size trace)
        in
        let m = result.Detector.metrics in
        [|
          Engine.name engine;
          Printf.sprintf "%.1f ms" (1000.0 *. t);
          string_of_int m.Metrics.vc_full_ops;
          Tabulate.pct (Metrics.acquires_skipped_ratio m);
          string_of_int m.Metrics.deep_copies;
          string_of_int (List.length (Detector.racy_locations result));
        |])
      all_engines
  in
  Tabulate.render
    ~header:[| "engine"; "time"; "O(T) clock ops"; "acq skipped"; "deep copies"; "racy locs" |]
    rows

let clock_sweep ?(repeats = 3) ?(seed = 1) ?(rate = 0.03) ?(sizes = [ 16; 64; 256; 1024 ])
    ?jobs ~target_events () =
  let trace = Db_sim.generate (tpcc ()) ~seed ~target_events in
  let sampler = Sampler.bernoulli ~rate ~seed in
  let engines = [ Engine.St; Engine.Su; Engine.Sl; Engine.So ] in
  let grid = List.concat_map (fun s -> List.map (fun e -> (s, e)) engines) sizes in
  let cells =
    par_cells ?jobs
      (fun (clock_size, engine) ->
        let clock_size = Stdlib.max clock_size trace.Trace.nthreads in
        let t =
          time_best ~repeats (fun () ->
              Engine.run_instrumented engine ~sampler ~clock_size trace)
        in
        Printf.sprintf "%.1f ms" (1000.0 *. t))
      grid
  in
  let ncols = List.length engines in
  let rows =
    List.mapi
      (fun i clock_size ->
        let row = List.filteri (fun j _ -> j / ncols = i) cells in
        Array.of_list
          (string_of_int (Stdlib.max clock_size trace.Trace.nthreads) :: row))
      sizes
  in
  Tabulate.render
    ~header:(Array.of_list ("T (clock width)" :: List.map Engine.name engines))
    rows

(* Adversarial many-locks workload for the O(|S|·T·(T+L)) vs O(|S|·T)
   separation of Lemmas 7 and 8: in every round, each of [nthreads] threads
   performs one sampled access and then cycles through all L locks.  Every
   one of its L releases then carries fresh information, so SU performs L
   full copies per round while SO hands out L shallow copies and pays at
   most a couple of deep copies. *)
let many_locks_trace ~nthreads ~nlocks ~rounds =
  let b = Trace.Builder.create () in
  for _ = 1 to rounds do
    for t = 0 to nthreads - 1 do
      Trace.Builder.write b t t;
      for l = 0 to nlocks - 1 do
        Trace.Builder.acquire b t l;
        Trace.Builder.release b t l
      done
    done
  done;
  Trace.Builder.build b

let lock_sweep ?(seed = 1) ?(rate = 1.0) ?(stripes = [ 2; 8; 32; 128 ]) ?jobs
    ~target_events () =
  let engines = [ Engine.St; Engine.Su; Engine.So ] in
  let nthreads = 8 in
  let rows =
    par_cells ?jobs
      (fun nlocks ->
        let rounds = Stdlib.max 1 (target_events / (nthreads * ((2 * nlocks) + 1))) in
        let trace = many_locks_trace ~nthreads ~nlocks ~rounds in
        let sampler =
          if rate >= 1.0 then Sampler.all else Sampler.bernoulli ~rate ~seed
        in
        let cells =
          List.map
            (fun engine ->
              let result = Engine.run engine ~sampler ~clock_size:64 trace in
              string_of_int result.Detector.metrics.Metrics.vc_full_ops)
            engines
        in
        Array.of_list (Printf.sprintf "%d locks" nlocks :: cells))
      stripes
  in
  Tabulate.render
    ~header:(Array.of_list ("L" :: List.map (fun e -> Engine.name e ^ " O(T) ops") engines))
    rows

let sampler_table ?(seed = 1) ?(clock_size = 64) ?jobs ~target_events () =
  let trace = Db_sim.generate (tpcc ()) ~seed ~target_events in
  let strategies =
    [
      Sampler.bernoulli ~rate:0.03 ~seed;
      Sampler.windowed ~period:1000 ~duty:0.03;
      Sampler.cold_region ~threshold:4;
      Sampler.adaptive ~base_rate:8;
      Sampler.all;
    ]
  in
  let rows =
    par_cells ?jobs
      (fun sampler ->
        let result = Engine.run Engine.So ~sampler ~clock_size trace in
        let m = result.Detector.metrics in
        [|
          Sampler.name sampler;
          string_of_int m.Metrics.sampled_accesses;
          Tabulate.pct (Metrics.acquires_skipped_ratio m);
          string_of_int m.Metrics.deep_copies;
          string_of_int (List.length (Detector.racy_locations result));
        |])
      strategies
  in
  Tabulate.render
    ~header:[| "strategy"; "|S|"; "acq skipped"; "deep copies"; "racy locs" |]
    rows
