(** The online-detection latency harness — the substitute for the paper's
    ThreadSanitizer + MySQL experiments (§6.2).

    Baselines (§6.2.2):
    - NT: replaying the trace with no handlers at all;
    - ET: replaying through a no-op handler behind the same dispatch as real
      detectors — the pure instrumentation cost;
    - FT: FastTrack on every event.

    Configurations: ST / SU / SO at each sampling rate.  All configurations
    replay the {e same} trace (one per benchmark and seed), so differences
    are purely algorithmic.  [AO(S) = latency(S) − latency(ET)] exactly as
    in the paper; latency here is wall-clock analysis time for the trace
    (the workload volume is fixed, so per-request latency is proportional). *)

type rate_result = {
  rate : float;
  st_time : float;
  su_time : float;
  so_time : float;
  st_locs : int;   (** racy locations exposed *)
  su_locs : int;
  so_locs : int;
  su_metrics : Ft_core.Metrics.t;
  so_metrics : Ft_core.Metrics.t;
}

type measurement = {
  benchmark : string;
  events : int;
  nt : float;
  et : float;
  ft : float;
  ft_locs : int;
  per_rate : rate_result list;
}

val default_rates : float list
(** [0.003; 0.03; 0.10] — the paper's 0.3%, 3% and 10%. *)

val default_clock_size : int
(** 64 — the machine width of §6.2.2; use 256 to match TSan v3's fixed
    vector-clock size exactly (slower). *)

val measure :
  ?repeats:int ->
  ?rates:float list ->
  ?seed:int ->
  ?clock_size:int ->
  ?nseeds:int ->
  target_events:int ->
  Ft_workloads.Db_sim.profile ->
  measurement
(** Generates the benchmark trace and times every configuration on it,
    keeping the fastest of [repeats] (default 3) runs per configuration;
    with [nseeds > 1] (default 1) the timings are additionally averaged over
    that many independently generated traces (seeds [seed .. seed+nseeds−1])
    while detection counts come from the first. *)

val run_all :
  ?repeats:int ->
  ?rates:float list ->
  ?seed:int ->
  ?clock_size:int ->
  ?nseeds:int ->
  ?jobs:int ->
  ?on_error:(Ft_par.error -> unit) ->
  ?report:(Ft_par.stats -> unit) ->
  ?profiles:Ft_workloads.Db_sim.profile list ->
  target_events:int ->
  unit ->
  measurement list
(** Measures every profile.  The (profile × seed) grid fans out over [jobs]
    domains (default 1 = inline sequential); cells are merged back per
    profile in seed order, so detection counts and work metrics are
    identical for any [jobs].  Wall-clock timings are {e not}: concurrent
    cells contend for cores, so use [jobs = 1] for publishable latency
    numbers and [jobs > 1] for quick iterations.  A crashed cell goes to
    [on_error] (default: one line on stderr) and is dropped from its
    profile's average; a profile with no surviving cell is omitted.
    [report] receives the runner's wall/busy-time statistics. *)

(** {1 Figure tables} — rendered tables matching the paper's plots. *)

val fig5a : measurement list -> string
(** Latency of ET, FT and ST at each rate, relative to NT. *)

val fig5b : measurement list -> string
(** Algorithmic-overhead improvement [1 − AO(S)/AO(ST)] for SU and SO. *)

val fig6a : measurement list -> string
(** Racy locations exposed by ST/SU/SO relative to FT. *)

val fig6b : measurement list -> string
(** Share of acquire/release events on which SU performed an O(T)
    traversal. *)

val fig6c : measurement list -> string
(** Mean ordered-list entries traversed per acquire under SO. *)

val summary : measurement list -> string
(** Mean relative latencies and AO improvements across benchmarks —
    the headline numbers of §6.2.3–6.2.4. *)

val ao : measurement -> time:float -> float
(** [ao m ~time = time − m.et], clamped at a small positive epsilon. *)

val to_csv : measurement list -> string
(** Raw per-benchmark timings and detection counts as CSV. *)
