module Engine = Ft_core.Engine
module Detector = Ft_core.Detector
module Sampler = Ft_core.Sampler
module Metrics = Ft_core.Metrics
module Db_sim = Ft_workloads.Db_sim
module Trace = Ft_trace.Trace
module Tabulate = Ft_support.Tabulate
module Stats = Ft_support.Stats
module Clock = Ft_support.Clock

type rate_result = {
  rate : float;
  st_time : float;
  su_time : float;
  so_time : float;
  st_locs : int;
  su_locs : int;
  so_locs : int;
  su_metrics : Metrics.t;
  so_metrics : Metrics.t;
}

type measurement = {
  benchmark : string;
  events : int;
  nt : float;
  et : float;
  ft : float;
  ft_locs : int;
  per_rate : rate_result list;
}

let default_rates = [ 0.003; 0.03; 0.10 ]

(* Monotonic clock, not wall time: an NTP step mid-run must not be able to
   produce a negative or skewed latency sample. *)
let time_best ~repeats f =
  let best = ref infinity in
  for _ = 1 to repeats do
    let t0 = Clock.now_ns () in
    ignore (Sys.opaque_identity (f ()));
    let dt = Clock.elapsed_s ~since:t0 in
    if dt < !best then best := dt
  done;
  !best

let default_clock_size = 64

let measure_one ?(repeats = 3) ?(rates = default_rates) ?(seed = 1)
    ?(clock_size = default_clock_size) ~target_events (p : Db_sim.profile) =
  let trace = Db_sim.generate p ~seed ~target_events in
  let clock_size = Stdlib.max clock_size trace.Trace.nthreads in
  let nt = time_best ~repeats (fun () -> Detector.replay_only trace) in
  let et = time_best ~repeats (fun () -> Detector.replay_instrumented trace) in
  let run engine sampler = Engine.run_instrumented engine ?sampler ~clock_size trace in
  (* Fixed-time-budget model (§6.2.5): in the paper every configuration runs
     for the same wall-clock hour, so a configuration [k×] slower than the
     uninstrumented server only gets through [1/k] of the requests.  Racy
     locations are therefore counted over the prefix each configuration can
     afford. *)
  let events = Trace.length trace in
  let budget_locs engine sampler ~time =
    let limit =
      Stdlib.max 1
        (int_of_float (float_of_int events *. nt /. Stdlib.max nt time))
    in
    let result = Engine.run engine ?sampler ~clock_size ~limit trace in
    List.length (Detector.racy_locations result)
  in
  let ft = time_best ~repeats (fun () -> run Engine.Fasttrack None) in
  let per_rate =
    List.map
      (fun rate ->
        let sampler = Some (Sampler.bernoulli ~rate ~seed) in
        let su_res = run Engine.Su sampler in
        let so_res = run Engine.So sampler in
        let st_time = time_best ~repeats (fun () -> run Engine.St sampler) in
        let su_time = time_best ~repeats (fun () -> run Engine.Su sampler) in
        let so_time = time_best ~repeats (fun () -> run Engine.So sampler) in
        {
          rate;
          st_time;
          su_time;
          so_time;
          st_locs = budget_locs Engine.St sampler ~time:st_time;
          su_locs = budget_locs Engine.Su sampler ~time:su_time;
          so_locs = budget_locs Engine.So sampler ~time:so_time;
          su_metrics = su_res.Detector.metrics;
          so_metrics = so_res.Detector.metrics;
        })
      rates
  in
  {
    benchmark = p.Db_sim.name;
    events;
    nt;
    et;
    ft;
    ft_locs = budget_locs Engine.Fasttrack None ~time:ft;
    per_rate;
  }

(* Average timings over [nseeds] independently generated traces; detection
   counts and metrics come from the first completed seed (they are already
   averaged in structure, and Fig 6a's budget prefixes depend on that seed's
   times). *)
let aggregate runs =
  match runs with
  | [] -> None
  | first :: _ ->
    let mean f = Stats.mean (Array.of_list (List.map f runs)) in
    Some
      {
        first with
        nt = mean (fun m -> m.nt);
        et = mean (fun m -> m.et);
        ft = mean (fun m -> m.ft);
        per_rate =
          List.mapi
            (fun i r0 ->
              {
                r0 with
                st_time = mean (fun m -> (List.nth m.per_rate i).st_time);
                su_time = mean (fun m -> (List.nth m.per_rate i).su_time);
                so_time = mean (fun m -> (List.nth m.per_rate i).so_time);
              })
            first.per_rate;
      }

let measure ?repeats ?rates ?seed ?clock_size ?(nseeds = 1) ~target_events
    (p : Db_sim.profile) =
  let base = Option.value seed ~default:1 in
  let runs =
    List.init (Stdlib.max 1 nseeds) (fun k ->
        measure_one ?repeats ?rates ~seed:(base + k) ?clock_size ~target_events p)
  in
  Option.get (aggregate runs)

(* The (profile × seed) grid is embarrassingly parallel: one pool over all
   cells, merged back per profile in seed order.  Caveat for [jobs > 1]:
   concurrent cells contend for cores, so absolute wall-clock numbers
   inflate — use parallel runs for detection counts and work metrics (which
   are deterministic) or for quick relative comparisons, and [jobs = 1] for
   publishable latency figures. *)
let run_all ?repeats ?rates ?seed ?clock_size ?(nseeds = 1) ?(jobs = 1)
    ?(on_error = Ft_par.warn_stderr) ?report ?(profiles = Db_sim.profiles) ~target_events () =
  let base = Option.value seed ~default:1 in
  let nseeds = Stdlib.max 1 nseeds in
  let profs = Array.of_list profiles in
  let tasks =
    Array.init (Array.length profs * nseeds) (fun i -> (i / nseeds, i mod nseeds))
  in
  let cell (pi, k) =
    measure_one ?repeats ?rates ~seed:(base + k) ?clock_size ~target_events profs.(pi)
  in
  let results, stats = Ft_par.map_stats ~jobs cell tasks in
  Option.iter (fun f -> f stats) report;
  List.concat
    (List.mapi
       (fun pi (_ : Db_sim.profile) ->
         let runs = ref [] in
         for k = nseeds - 1 downto 0 do
           match results.((pi * nseeds) + k) with
           | Error e -> on_error e
           | Ok m -> runs := m :: !runs
         done;
         match aggregate !runs with None -> [] | Some m -> [ m ])
       (Array.to_list profs))

let ao m ~time = Stdlib.max 1e-9 (time -. m.et)

let rate_label r = Printf.sprintf "%g%%" (100.0 *. r.rate)

let fig5a ms =
  let rates = match ms with [] -> [] | m :: _ -> m.per_rate in
  let header =
    Array.of_list
      ([ "benchmark"; "events"; "ET/NT"; "FT/NT" ]
      @ List.map (fun r -> "ST" ^ rate_label r ^ "/NT") rates)
  in
  let body =
    List.map
      (fun m ->
        Array.of_list
          ([ m.benchmark; string_of_int m.events; Tabulate.fl1 (m.et /. m.nt);
             Tabulate.fl1 (m.ft /. m.nt) ]
          @ List.map (fun r -> Tabulate.fl1 (r.st_time /. m.nt)) m.per_rate))
      ms
  in
  Tabulate.render ~header body

let improvement m ~st ~time = 1.0 -. (ao m ~time /. ao m ~time:st)

let fig5b ms =
  let rates = match ms with [] -> [] | m :: _ -> m.per_rate in
  let header =
    Array.of_list
      ("benchmark"
      :: List.concat_map
           (fun r -> [ "SU" ^ rate_label r; "SO" ^ rate_label r ])
           rates)
  in
  let body =
    List.map
      (fun m ->
        Array.of_list
          (m.benchmark
          :: List.concat_map
               (fun r ->
                 [
                   Tabulate.pct (improvement m ~st:r.st_time ~time:r.su_time);
                   Tabulate.pct (improvement m ~st:r.st_time ~time:r.so_time);
                 ])
               m.per_rate))
      ms
  in
  Tabulate.render ~header body

let fig6a ms =
  let rates = match ms with [] -> [] | m :: _ -> m.per_rate in
  let header =
    Array.of_list
      ([ "benchmark"; "FT locs" ]
      @ List.concat_map
          (fun r ->
            [ "ST" ^ rate_label r; "SU" ^ rate_label r; "SO" ^ rate_label r ])
          rates)
  in
  let rel m locs =
    if m.ft_locs = 0 then "-" else Tabulate.pct (float_of_int locs /. float_of_int m.ft_locs)
  in
  let body =
    List.map
      (fun m ->
        Array.of_list
          ([ m.benchmark; string_of_int m.ft_locs ]
          @ List.concat_map
              (fun r -> [ rel m r.st_locs; rel m r.su_locs; rel m r.so_locs ])
              m.per_rate))
      ms
  in
  Tabulate.render ~header body

let fig6b ms =
  let rates = match ms with [] -> [] | m :: _ -> m.per_rate in
  let header =
    Array.of_list
      ("benchmark" :: List.map (fun r -> "SU work " ^ rate_label r) rates)
  in
  let body =
    List.map
      (fun m ->
        Array.of_list
          (m.benchmark
          :: List.map
               (fun r -> Tabulate.pct (Metrics.sync_full_work_ratio r.su_metrics))
               m.per_rate))
      ms
  in
  Tabulate.render ~header body

let fig6c ms =
  let rates = match ms with [] -> [] | m :: _ -> m.per_rate in
  let header =
    Array.of_list
      ("benchmark" :: List.map (fun r -> "SO entries/acq " ^ rate_label r) rates)
  in
  let body =
    List.map
      (fun m ->
        Array.of_list
          (m.benchmark
          :: List.map
               (fun r -> Tabulate.fl (Metrics.mean_entries_per_acquire r.so_metrics))
               m.per_rate))
      ms
  in
  Tabulate.render ~header body

let to_csv ms =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    "benchmark,events,nt_s,et_s,ft_s,ft_locs,rate,st_s,su_s,so_s,st_locs,su_locs,so_locs\n";
  List.iter
    (fun m ->
      List.iter
        (fun r ->
          Buffer.add_string buf
            (Printf.sprintf "%s,%d,%.6f,%.6f,%.6f,%d,%g,%.6f,%.6f,%.6f,%d,%d,%d\n" m.benchmark
               m.events m.nt m.et m.ft m.ft_locs r.rate r.st_time r.su_time r.so_time
               r.st_locs r.su_locs r.so_locs))
        m.per_rate)
    ms;
  Buffer.contents buf

let summary ms =
  match ms with
  | [] -> "(no measurements)\n"
  | first :: _ ->
    let mean f = Stats.mean (Array.of_list (List.map f ms)) in
    let buf = Buffer.create 512 in
    Buffer.add_string buf
      (Printf.sprintf "mean ET/NT = %.1fx   mean FT/NT = %.1fx\n" (mean (fun m -> m.et /. m.nt))
         (mean (fun m -> m.ft /. m.nt)));
    List.iteri
      (fun i r0 ->
        Buffer.add_string buf
          (Printf.sprintf
             "rate %-5s  ST/NT = %.1fx   AO improvement: SU %s  SO %s\n"
             (rate_label r0)
             (mean (fun m -> (List.nth m.per_rate i).st_time /. m.nt))
             (Tabulate.pct
                (mean (fun m ->
                     let r = List.nth m.per_rate i in
                     improvement m ~st:r.st_time ~time:r.su_time)))
             (Tabulate.pct
                (mean (fun m ->
                     let r = List.nth m.per_rate i in
                     improvement m ~st:r.st_time ~time:r.so_time)))))
      first.per_rate;
    Buffer.contents buf
