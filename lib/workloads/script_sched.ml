module Prng = Ft_support.Prng
module Trace = Ft_trace.Trace
module Event = Ft_trace.Event

exception Stuck of string

type worker = { tid : int; mutable script : Event.t list }

let interleave prng b ~scripts =
  let workers = Array.of_list (List.map (fun (tid, script) -> { tid; script }) scripts) in
  let n = Array.length workers in
  let max_lock = ref (-1) in
  List.iter
    (fun (_, script) ->
      List.iter
        (fun (e : Event.t) ->
          match e.Event.op with
          | Event.Acquire l | Event.Release l | Event.Release_store l | Event.Acquire_load l ->
            if l > !max_lock then max_lock := l
          | Event.Read _ | Event.Write _ | Event.Fork _ | Event.Join _ -> ())
        script)
    scripts;
  let holder = Array.make (!max_lock + 2) (-1) in
  let can_emit w =
    match w.script with
    | [] -> false
    | e :: _ -> (
      match e.Event.op with
      | Event.Acquire l -> holder.(l) < 0
      | Event.Read _ | Event.Write _ | Event.Release _ | Event.Fork _ | Event.Join _
      | Event.Release_store _ | Event.Acquire_load _ -> true)
  in
  let remaining = ref (Array.fold_left (fun acc w -> acc + List.length w.script) 0 workers) in
  while !remaining > 0 do
    let start = Prng.int prng n in
    let chosen = ref (-1) in
    let k = ref 0 in
    while !chosen < 0 && !k < n do
      let idx = (start + !k) mod n in
      if can_emit workers.(idx) then chosen := idx;
      incr k
    done;
    match !chosen with
    | -1 -> raise (Stuck "Script_sched.interleave: all runnable threads are blocked")
    | idx -> (
      let w = workers.(idx) in
      match w.script with
      | [] -> assert false
      | e :: rest ->
        (match e.Event.op with
        | Event.Acquire l -> holder.(l) <- w.tid
        | Event.Release l ->
          if holder.(l) <> w.tid then
            raise (Stuck (Printf.sprintf "thread %d releases lock %d it does not hold" w.tid l));
          holder.(l) <- -1
        | Event.Read _ | Event.Write _ | Event.Fork _ | Event.Join _ | Event.Release_store _
        | Event.Acquire_load _ -> ());
        Trace.Builder.add b e;
        w.script <- rest;
        decr remaining)
  done

let run_workers prng b ~main ~scripts =
  List.iter (fun (tid, _) -> Trace.Builder.fork b main tid) scripts;
  interleave prng b ~scripts;
  List.iter (fun (tid, _) -> Trace.Builder.join b main tid) scripts
