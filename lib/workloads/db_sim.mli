(** A lock-accurate multi-threaded database-server simulator.

    This is the substitute for the paper's MySQL 8 + BenchBase setup (§6.2):
    the evaluation's claims concern the cost of analysing the *event stream*
    a lock-heavy server produces, so we reproduce the stream, not the SQL.
    The simulator models a transactional storage engine in the style of
    InnoDB:

    - every transaction brackets its work in transaction-system mutex
      acquisitions (begin/commit) and appends to the log under a global log
      mutex;
    - each operation latches the table, then acquires a striped row lock,
      touches the row's memory locations, and unlocks in LIFO order;
    - a buffer-pool mutex is taken on simulated page misses;
    - a few global statistics counters are updated {e without} a lock —
      MySQL has many such benign races, and they give the race-detection-
      rate experiment (Fig 6a) something to find.

    Lock levels are ordered (trx-sys < table < row < buffer pool < log), so
    the scheduler can never deadlock.  The interleaving is driven by a seeded
    PRNG: one run = one trace, identical across engines.

    One {!profile} per BenchBase benchmark captures that workload's
    synchronization texture: transaction length, read/write mix, contention
    (row skew), and the sync-to-access ratio — the axis that §6.2.4 shows
    determines how much the paper's algorithms can save. *)

type profile = {
  name : string;
  n_workers : int;          (** client terminals (§6.2.2 uses 12) *)
  n_tables : int;
  rows_per_table : int;     (** distinct row locations per table *)
  row_lock_stripes : int;   (** striped row-lock pool per table *)
  ops_min : int;            (** operations per transaction, inclusive range *)
  ops_max : int;
  write_prob : float;       (** probability an operation writes *)
  hot_row_prob : float;     (** probability an op hits one of few hot rows *)
  hot_rows : int;
  cols_per_op : int;        (** locations touched per row operation *)
  page_miss_prob : float;   (** buffer-pool mutex acquisitions *)
  stats_update_prob : float;(** unprotected global-counter updates per txn *)
  scan_run : int;           (** extra lock-free read run per op (scans) *)
}

val profiles : profile list
(** The twelve BenchBase workloads the paper reports (§6.2.1 keeps 12 of 15
    after exclusions): tpcc, tatp, ycsb, wikipedia, twitter, smallbank,
    seats, auctionmark, epinions, sibench, voter, hyadapt. *)

val profile : string -> profile option
(** Look up a profile by name. *)

val generate : profile -> seed:int -> target_events:int -> Ft_trace.Trace.t
(** Run the simulated server until roughly [target_events] events have been
    emitted, then join all workers.  The result is well-formed by
    construction (validated in tests, not on every call — traces can be
    large). *)
