(** Random interleaving of per-thread event scripts.

    Takes one pre-rendered event script per worker thread and emits a random
    interleaving that respects lock semantics: a thread whose next event
    acquires a held lock is not scheduled until the lock frees.  Scripts must
    be individually lock-balanced and must avoid cyclic lock-order conflicts
    (hold-one-acquire-another against another thread's reverse order);
    a genuine deadlock raises [Stuck] rather than emitting an ill-formed
    trace. *)

exception Stuck of string

val interleave :
  Ft_support.Prng.t ->
  Ft_trace.Trace.Builder.t ->
  scripts:(Ft_trace.Event.tid * Ft_trace.Event.t list) list ->
  unit
(** Emits all script events into the builder in a random blocked-aware
    interleaving.  The caller is responsible for any surrounding fork/join
    events. *)

val run_workers :
  Ft_support.Prng.t ->
  Ft_trace.Trace.Builder.t ->
  main:Ft_trace.Event.tid ->
  scripts:(Ft_trace.Event.tid * Ft_trace.Event.t list) list ->
  unit
(** [run_workers prng b ~main ~scripts] forks every script thread from
    [main], interleaves the scripts, then joins them all. *)
