module Prng = Ft_support.Prng
module Trace = Ft_trace.Trace
module Event = Ft_trace.Event

type benchmark = {
  name : string;
  description : string;
  generate : seed:int -> scale:int -> Trace.t;
}

(* --- script helpers ------------------------------------------------------ *)

let r t x = Event.mk t (Event.Read x)
let w t x = Event.mk t (Event.Write x)
let acq t l = Event.mk t (Event.Acquire l)
let rel t l = Event.mk t (Event.Release l)

(* Critical section: acquire, body, release. *)
let cs t l body = (acq t l :: body) @ [ rel t l ]

(* A run of thread-private computation: reads and writes on a private block. *)
let compute prng t ~base ~width n =
  List.init n (fun _ ->
      let x = base + Prng.int prng width in
      if Prng.bool prng then w t x else r t x)

(* Build a trace from worker scripts under a forking main thread. *)
let with_workers ~seed ~nworkers mk_script =
  let b = Trace.Builder.create () in
  let prng = Prng.create ~seed in
  let main = Trace.Builder.fresh_thread b in
  let tids = List.init nworkers (fun _ -> Trace.Builder.fresh_thread b) in
  let scripts = List.mapi (fun i tid -> (tid, mk_script (Prng.split prng) i tid)) tids in
  Script_sched.run_workers prng b ~main ~scripts;
  Trace.Builder.build_unchecked b

(* Phase-structured trace: [phases] rounds; in each round every worker
   contributes a script, rounds are separated by a two-sweep lock barrier
   that makes everything in round p happen-before everything in round p+1. *)
let with_phases ~seed ~nworkers ~phases ~barrier_lock mk_script =
  let b = Trace.Builder.create () in
  let prng = Prng.create ~seed in
  let main = Trace.Builder.fresh_thread b in
  let tids = Array.init nworkers (fun _ -> Trace.Builder.fresh_thread b) in
  Array.iter (fun tid -> Trace.Builder.fork b main tid) tids;
  for phase = 0 to phases - 1 do
    let scripts =
      Array.to_list
        (Array.mapi (fun i tid -> (tid, mk_script (Prng.split prng) ~phase i tid)) tids)
    in
    Script_sched.interleave prng b ~scripts;
    (* two sequential acquire/release sweeps = a barrier under HB *)
    for _ = 1 to 2 do
      Array.iter
        (fun tid ->
          Trace.Builder.acquire b tid barrier_lock;
          Trace.Builder.release b tid barrier_lock)
        tids
    done
  done;
  Array.iter (fun tid -> Trace.Builder.join b main tid) tids;
  Trace.Builder.build_unchecked b

let repeat n f = List.concat (List.init n f)

(* --- the 26 benchmarks --------------------------------------------------- *)

(* account: threads deposit/withdraw under the account lock; a monitoring
   read of the balance is unprotected (the IBM Contest account bug). *)
let account ~seed ~scale =
  with_workers ~seed ~nworkers:4 (fun prng _i tid ->
      repeat (10 * scale) (fun _ ->
          let balance = 0 and log_slot = 1 + tid in
          let protected_op = cs tid 0 [ r tid balance; w tid balance ] in
          let audit = if Prng.bernoulli prng ~p:0.3 then [ r tid balance ] else [] in
          protected_op @ audit @ [ w tid log_slot ]))

(* airlinetickets: racy check-then-act on a seat counter, no locks at all. *)
let airlinetickets ~seed ~scale =
  with_workers ~seed ~nworkers:4 (fun prng _i tid ->
      repeat (8 * scale) (fun _ ->
          let seats = 0 in
          let sold = 1 + tid in
          if Prng.bernoulli prng ~p:0.7 then [ r tid seats; w tid seats; w tid sold ]
          else [ r tid seats ]))

(* array: workers fill disjoint slices — data-parallel, almost no sync. *)
let array_bench ~seed ~scale =
  with_workers ~seed ~nworkers:4 (fun prng i tid ->
      let base = 1 + (i * 50) in
      compute prng tid ~base ~width:50 (40 * scale)
      @ cs tid 0 [ w tid 0 ] (* publish slice checksum *))

(* boundedbuffer: producers and consumers around a lock-protected buffer. *)
let boundedbuffer ~seed ~scale =
  with_workers ~seed ~nworkers:4 (fun prng i tid ->
      let slots = 8 in
      repeat (12 * scale) (fun _ ->
          let slot = 2 + Prng.int prng slots in
          if i < 2 then cs tid 0 [ r tid 0; w tid slot; w tid 0; w tid 1 ]
          else cs tid 0 [ r tid 0; r tid slot; w tid 0; w tid 1 ]))

(* bubblesort: phase-parallel adjacent swaps under striped element locks. *)
let bubblesort ~seed ~scale =
  let n_elems = 24 in
  with_phases ~seed ~nworkers:4 ~phases:(2 * scale) ~barrier_lock:0
    (fun prng ~phase:_ i tid ->
      ignore i;
      repeat 6 (fun _ ->
          let j = Prng.int prng (n_elems - 1) in
          let l1 = 1 + j and l2 = 2 + j in
          (* element k is guarded by lock k+1; adjacent pairs nest in order *)
          [ acq tid l1; acq tid l2; r tid j; r tid (j + 1); w tid j;
            w tid (j + 1); rel tid l2; rel tid l1 ]))

(* bufwriter: writers append under the buffer lock; the flusher drains it;
   the length field is peeked without the lock (the known bufwriter race). *)
let bufwriter ~seed ~scale =
  with_workers ~seed ~nworkers:5 (fun prng i tid ->
      let len = 0 and buf_base = 2 in
      repeat (10 * scale) (fun _ ->
          if i < 4 then
            cs tid 0 [ r tid len; w tid (buf_base + Prng.int prng 16); w tid len ]
          else begin
            let peek = if Prng.bernoulli prng ~p:0.3 then [ r tid len ] else [] in
            peek @ cs tid 0 (r tid len :: List.init 4 (fun k -> r tid (buf_base + k)) @ [ w tid len ])
          end))

(* clean: a task queue drained under its lock, task payloads cleaned with
   per-task locks. *)
let clean ~seed ~scale =
  with_workers ~seed ~nworkers:3 (fun prng _i tid ->
      repeat (10 * scale) (fun _ ->
          let task = Prng.int prng 6 in
          cs tid 0 [ r tid 0; w tid 0 ]
          @ cs tid (1 + task) [ r tid (1 + task); w tid (1 + task) ]))

(* critical: long lock-protected critical sections back to back — pure lock
   hand-off traffic. *)
let critical ~seed ~scale =
  with_workers ~seed ~nworkers:4 (fun prng _i tid ->
      repeat (15 * scale) (fun _ ->
          cs tid 0 (compute prng tid ~base:0 ~width:4 6)))

(* cryptorsa: long private computation bursts, rare shared-queue handoffs. *)
let cryptorsa ~seed ~scale =
  with_workers ~seed ~nworkers:4 (fun prng i tid ->
      repeat (4 * scale) (fun _ ->
          compute prng tid ~base:(10 + (i * 100)) ~width:100 60
          @ cs tid 0 [ r tid 0; w tid 0 ]))

(* derby: database-style page locks with transactional brackets. *)
let derby ~seed ~scale =
  with_workers ~seed ~nworkers:6 (fun prng _i tid ->
      repeat (6 * scale) (fun _ ->
          let page = Prng.int prng 12 in
          let page2 = Prng.int prng 12 in
          cs tid 0 [ r tid 0 ]
          @ cs tid (1 + page) [ r tid (1 + page); w tid (1 + page) ]
          @ cs tid (1 + page2) [ r tid (1 + page2) ]
          @ cs tid 13 [ w tid 20 ] (* log append *)))

(* ftpserver: sessions mostly touch their own lock (self-reacquisition),
   shared config is read without protection against rare reconfigurations. *)
let ftpserver ~seed ~scale =
  with_workers ~seed ~nworkers:6 (fun prng i tid ->
      let session_lock = 1 + i and session_data = 10 + i in
      let config = 0 in
      repeat (10 * scale) (fun _ ->
          let reconfig =
            if i = 0 && Prng.bernoulli prng ~p:0.25 then [ w tid config ] else [ r tid config ]
          in
          reconfig @ cs tid session_lock [ r tid session_data; w tid session_data ]))

(* jigsaw: web-server worker pool over a striped document cache. *)
let jigsaw ~seed ~scale =
  with_workers ~seed ~nworkers:6 (fun prng i tid ->
      repeat (8 * scale) (fun _ ->
          let stripe = Prng.int prng 8 in
          cs tid (1 + stripe)
            (r tid (1 + stripe) :: compute prng tid ~base:(20 + (i * 10)) ~width:10 3)
          @ cs tid 0 [ w tid 0 ] (* hit counter *)))

(* linkedlist: every operation traverses the list under one global lock. *)
let linkedlist ~seed ~scale =
  with_workers ~seed ~nworkers:4 (fun prng _i tid ->
      repeat (8 * scale) (fun _ ->
          let len = 5 + Prng.int prng 5 in
          cs tid 0 (List.init len (fun k -> r tid k) @ [ w tid (Prng.int prng len) ])))

(* lufact: barrier-separated factorization phases; each phase reads the
   pivot row published in the previous phase and writes its own block. *)
let lufact ~seed ~scale =
  with_phases ~seed ~nworkers:4 ~phases:(2 * scale) ~barrier_lock:0
    (fun prng ~phase i tid ->
      let pivot_base = 1 + (8 * (phase mod 4)) in
      let own_base = 40 + (i * 30) in
      List.init 8 (fun k -> r tid (pivot_base + k)) @ compute prng tid ~base:own_base ~width:30 20)

(* luindex: one indexer writes the shared index under its lock, searchers
   read it under the same lock. *)
let luindex ~seed ~scale =
  with_workers ~seed ~nworkers:4 (fun prng i tid ->
      repeat (8 * scale) (fun _ ->
          if i = 0 then cs tid 0 (compute prng tid ~base:0 ~width:20 6)
          else cs tid 0 (List.init 5 (fun _ -> r tid (Prng.int prng 20)))))

(* lusearch: like luindex but read-dominated with more searchers. *)
let lusearch ~seed ~scale =
  with_workers ~seed ~nworkers:6 (fun prng i tid ->
      repeat (8 * scale) (fun _ ->
          if i = 0 && Prng.bernoulli prng ~p:0.2 then cs tid 0 [ w tid (Prng.int prng 20) ]
          else cs tid 0 (List.init 6 (fun _ -> r tid (Prng.int prng 20)))))

(* mergesort: fork/join divide and conquer — leaves sort private ranges,
   the main thread merges after joining. *)
let mergesort ~seed ~scale =
  let b = Trace.Builder.create () in
  let prng = Prng.create ~seed in
  let main = Trace.Builder.fresh_thread b in
  let leaves = 4 in
  let tids = List.init leaves (fun _ -> Trace.Builder.fresh_thread b) in
  let scripts =
    List.mapi
      (fun i tid ->
        let base = 1 + (i * 40) in
        (tid, compute (Prng.split prng) tid ~base ~width:40 (30 * scale)))
      tids
  in
  Script_sched.run_workers prng b ~main ~scripts;
  (* merge: main reads every range and writes the output block *)
  List.iteri
    (fun i _ ->
      for k = 0 to 9 do
        Trace.Builder.read b main (1 + (i * 40) + k)
      done)
    tids;
  for k = 0 to 19 do
    Trace.Builder.write b main (200 + k)
  done;
  Trace.Builder.build_unchecked b

(* moldyn: alternating barrier-separated halves — even phases read all
   positions and write private forces, odd phases integrate forces into own
   positions; the barrier keeps cross-thread position reads race-free. *)
let moldyn ~seed ~scale =
  let positions k = 1 + k in
  let forces i k = 20 + (i * 4) + k in
  with_phases ~seed ~nworkers:4 ~phases:(2 * scale) ~barrier_lock:0
    (fun _prng ~phase i tid ->
      if phase mod 2 = 0 then
        List.init 16 (fun k -> r tid (positions k))
        @ List.init 4 (fun k -> w tid (forces i k))
      else
        List.init 4 (fun k -> r tid (forces i k))
        @ List.init 4 (fun k -> w tid (positions ((i * 4) + k))))

(* montecarlo: embarrassingly parallel simulation with a locked reduction. *)
let montecarlo ~seed ~scale =
  with_workers ~seed ~nworkers:4 (fun prng i tid ->
      repeat (4 * scale) (fun _ ->
          compute prng tid ~base:(10 + (i * 50)) ~width:50 40
          @ cs tid 0 [ r tid 0; w tid 0 ]))

(* pingpong: threads bounce work between two locks in reverse order of
   release — the lock-order-reversal skipping case of §A.1.2(3b). *)
let pingpong ~seed ~scale =
  with_workers ~seed ~nworkers:2 (fun _prng i tid ->
      repeat (15 * scale) (fun _ ->
          if i = 0 then
            cs tid 0 [ r tid 0; w tid 0 ] @ cs tid 1 [ r tid 1; w tid 1 ]
          else
            cs tid 1 [ r tid 1; w tid 1 ] @ cs tid 0 [ r tid 0; w tid 0 ]))

(* producerconsumer: the canonical queue. *)
let producerconsumer ~seed ~scale =
  with_workers ~seed ~nworkers:4 (fun prng i tid ->
      repeat (12 * scale) (fun _ ->
          let slot = 3 + Prng.int prng 8 in
          if i < 2 then cs tid 0 [ r tid 0; w tid slot; w tid 0 ]
          else cs tid 0 [ r tid 0; r tid slot; w tid 1 ]))

(* raytracer: read-only scene, private rows, and the JGF checksum race —
   the final checksum is accumulated without the lock. *)
let raytracer ~seed ~scale =
  with_workers ~seed ~nworkers:4 (fun prng i tid ->
      let scene = List.init 12 (fun k -> r tid (2 + k)) in
      repeat (5 * scale) (fun _ ->
          scene
          @ compute prng tid ~base:(20 + (i * 30)) ~width:30 20
          @ [ r tid 0; w tid 0 ] (* racy checksum update *)
          @ cs tid 0 [ w tid 1 ]))

(* readerswriters: bursts under a single rw-lock modelled as a mutex. *)
let readerswriters ~seed ~scale =
  with_workers ~seed ~nworkers:5 (fun prng i tid ->
      repeat (10 * scale) (fun _ ->
          if i < 4 then cs tid 0 (List.init 4 (fun k -> r tid k))
          else cs tid 0 [ w tid (Prng.int prng 4) ]))

(* sor: relaxation over per-worker blocks; interior cells are private,
   boundary cells are guarded by the boundary lock shared with the
   neighbour, phases separated by the barrier. *)
let sor ~seed ~scale =
  let nworkers = 4 in
  with_phases ~seed ~nworkers ~phases:(2 * scale) ~barrier_lock:0
    (fun prng ~phase:_ i tid ->
      let base = 1 + (i * 10) in
      let left_lock = 1 + ((i + nworkers - 1) mod nworkers) in
      let right_lock = 1 + i in
      let neighbour_base = 1 + (((i + 1) mod nworkers) * 10) in
      cs tid left_lock [ w tid base ]
      @ compute prng tid ~base:(base + 1) ~width:8 10
      @ cs tid right_lock [ w tid (base + 9); r tid neighbour_base ])

(* twostage: the classic two-lock pipeline bug — stage 2 reads data that
   stage 1 wrote under a different lock. *)
let twostage ~seed ~scale =
  with_workers ~seed ~nworkers:4 (fun _prng i tid ->
      repeat (10 * scale) (fun _ ->
          if i < 2 then cs tid 0 [ w tid 0 ] @ cs tid 1 [ w tid 1 ]
          else cs tid 1 [ r tid 1; r tid 0 ] (* reads loc 0 under the wrong lock *)))

(* wronglock: same datum guarded by different locks in different threads. *)
let wronglock ~seed ~scale =
  with_workers ~seed ~nworkers:4 (fun _prng i tid ->
      repeat (10 * scale) (fun _ ->
          let l = if i mod 2 = 0 then 0 else 1 in
          cs tid l [ r tid 0; w tid 0 ]))

(* --- the four benchmarks outside the figures (§A.1.1 analyses 30 programs,
   the plots show 26) ------------------------------------------------------- *)

(* philo: dining philosophers with globally ordered forks (no deadlock, no
   race); the shared "meals served" counter is lock-protected. *)
let philo ~seed ~scale =
  let n = 5 in
  with_workers ~seed ~nworkers:n (fun _prng i tid ->
      let left = i and right = (i + 1) mod n in
      let first = Stdlib.min left right and second = Stdlib.max left right in
      repeat (8 * scale) (fun _ ->
          [ acq tid first; acq tid second; r tid i; w tid i ]
          @ cs tid n [ r tid n; w tid n ]
          @ [ rel tid second; rel tid first ]))

(* elevator: a controller posts requests into a locked queue, cars consume
   them; the status display reads car positions without the lock. *)
let elevator ~seed ~scale =
  with_workers ~seed ~nworkers:4 (fun prng i tid ->
      repeat (10 * scale) (fun _ ->
          if i = 0 then
            (* controller: post request, then racily render the display *)
            cs tid 0 [ r tid 0; w tid 0 ]
            @ List.init 3 (fun car -> r tid (1 + car))
          else
            (* car i: take a request, move (write own position) *)
            cs tid 0 [ r tid 0; w tid 0 ]
            @ [ w tid i ]
            @ compute prng tid ~base:(10 + (i * 5)) ~width:5 3))

(* hedc: a crawler task pool; workers claim tasks under the pool lock, fetch
   (private compute), and install results under striped locks. *)
let hedc ~seed ~scale =
  with_workers ~seed ~nworkers:5 (fun prng _i tid ->
      repeat (6 * scale) (fun _ ->
          let stripe = Prng.int prng 4 in
          cs tid 0 [ r tid 0; w tid 0 ]
          @ compute prng tid ~base:(20 + (tid * 20)) ~width:20 12
          @ cs tid (1 + stripe) [ w tid (1 + stripe) ]))

(* tsp: branch and bound; the global best bound is read without the lock
   (the classic benign race) and updated under it. *)
let tsp ~seed ~scale =
  with_workers ~seed ~nworkers:4 (fun prng i tid ->
      repeat (6 * scale) (fun _ ->
          [ r tid 0 ] (* racy bound check *)
          @ compute prng tid ~base:(10 + (i * 30)) ~width:30 15
          @ (if Prng.bernoulli prng ~p:0.3 then cs tid 0 [ r tid 0; w tid 0 ] else [])))

let all =
  [
    { name = "account"; description = "lock-protected account, unprotected audit";
      generate = account };
    { name = "airlinetickets"; description = "racy check-then-act seat counter";
      generate = airlinetickets };
    { name = "array"; description = "data-parallel disjoint slices"; generate = array_bench };
    { name = "boundedbuffer"; description = "producers/consumers on a locked buffer";
      generate = boundedbuffer };
    { name = "bubblesort"; description = "phase-parallel swaps, element locks";
      generate = bubblesort };
    { name = "bufwriter"; description = "locked buffer with unprotected length peek";
      generate = bufwriter };
    { name = "clean"; description = "task queue with per-task locks"; generate = clean };
    { name = "critical"; description = "back-to-back critical sections"; generate = critical };
    { name = "cryptorsa"; description = "compute-heavy with rare handoffs";
      generate = cryptorsa };
    { name = "derby"; description = "page locks with transactional brackets";
      generate = derby };
    { name = "ftpserver"; description = "per-session locks, racy config reads";
      generate = ftpserver };
    { name = "jigsaw"; description = "worker pool over striped cache"; generate = jigsaw };
    { name = "linkedlist"; description = "global-lock list traversals"; generate = linkedlist };
    { name = "lufact"; description = "barrier-phased factorization"; generate = lufact };
    { name = "luindex"; description = "one indexer, locked readers"; generate = luindex };
    { name = "lusearch"; description = "read-dominated index searches"; generate = lusearch };
    { name = "mergesort"; description = "fork/join divide and conquer"; generate = mergesort };
    { name = "moldyn"; description = "barrier-phased force computation"; generate = moldyn };
    { name = "montecarlo"; description = "parallel simulation, locked reduction";
      generate = montecarlo };
    { name = "pingpong"; description = "reverse-order lock bouncing"; generate = pingpong };
    { name = "producerconsumer"; description = "canonical locked queue";
      generate = producerconsumer };
    { name = "raytracer"; description = "read-only scene, racy checksum";
      generate = raytracer };
    { name = "readerswriters"; description = "reader/writer bursts under a mutex";
      generate = readerswriters };
    { name = "sor"; description = "red/black relaxation with boundary locks"; generate = sor };
    { name = "twostage"; description = "two-lock pipeline bug"; generate = twostage };
    { name = "wronglock"; description = "same datum, different locks"; generate = wronglock };
  ]

let extended =
  all
  @ [
      { name = "elevator"; description = "locked request queue, racy display";
        generate = elevator };
      { name = "hedc"; description = "crawler task pool with striped results";
        generate = hedc };
      { name = "philo"; description = "ordered-fork dining philosophers"; generate = philo };
      { name = "tsp"; description = "branch and bound, racy bound check"; generate = tsp };
    ]

let find name = List.find_opt (fun bench -> bench.name = name) extended
