module Prng = Ft_support.Prng
module Trace = Ft_trace.Trace
module Event = Ft_trace.Event

type profile = {
  name : string;
  n_workers : int;
  n_tables : int;
  rows_per_table : int;
  row_lock_stripes : int;
  ops_min : int;
  ops_max : int;
  write_prob : float;
  hot_row_prob : float;
  hot_rows : int;
  cols_per_op : int;
  page_miss_prob : float;
  stats_update_prob : float;
  scan_run : int;
}

(* One profile per BenchBase workload kept by the paper.  The parameters are
   chosen to reproduce each workload's synchronization texture — short
   lock-bracketed transactions (tatp, voter), contended hot rows (smallbank,
   twitter), scan-dominated access streams (sibench, hyadapt), etc. *)
let profiles =
  [
    {
      name = "tpcc"; n_workers = 12; n_tables = 9; rows_per_table = 2000;
      row_lock_stripes = 64; ops_min = 8; ops_max = 20; write_prob = 0.45;
      hot_row_prob = 0.15; hot_rows = 10; cols_per_op = 3; page_miss_prob = 0.08;
      stats_update_prob = 0.30; scan_run = 0;
    };
    {
      name = "tatp"; n_workers = 12; n_tables = 4; rows_per_table = 1000;
      row_lock_stripes = 32; ops_min = 1; ops_max = 3; write_prob = 0.20;
      hot_row_prob = 0.05; hot_rows = 8; cols_per_op = 2; page_miss_prob = 0.02;
      stats_update_prob = 0.20; scan_run = 0;
    };
    {
      name = "ycsb"; n_workers = 12; n_tables = 1; rows_per_table = 10000;
      row_lock_stripes = 128; ops_min = 1; ops_max = 2; write_prob = 0.50;
      hot_row_prob = 0.05; hot_rows = 16; cols_per_op = 10; page_miss_prob = 0.05;
      stats_update_prob = 0.05; scan_run = 0;
    };
    {
      name = "wikipedia"; n_workers = 12; n_tables = 6; rows_per_table = 4000;
      row_lock_stripes = 64; ops_min = 3; ops_max = 8; write_prob = 0.08;
      hot_row_prob = 0.20; hot_rows = 24; cols_per_op = 4; page_miss_prob = 0.04;
      stats_update_prob = 0.15; scan_run = 4;
    };
    {
      name = "twitter"; n_workers = 12; n_tables = 5; rows_per_table = 3000;
      row_lock_stripes = 64; ops_min = 2; ops_max = 6; write_prob = 0.20;
      hot_row_prob = 0.50; hot_rows = 20; cols_per_op = 3; page_miss_prob = 0.03;
      stats_update_prob = 0.15; scan_run = 2;
    };
    {
      name = "smallbank"; n_workers = 12; n_tables = 3; rows_per_table = 100;
      row_lock_stripes = 16; ops_min = 2; ops_max = 4; write_prob = 0.60;
      hot_row_prob = 0.30; hot_rows = 5; cols_per_op = 2; page_miss_prob = 0.01;
      stats_update_prob = 0.25; scan_run = 0;
    };
    {
      name = "seats"; n_workers = 12; n_tables = 8; rows_per_table = 1500;
      row_lock_stripes = 48; ops_min = 4; ops_max = 10; write_prob = 0.35;
      hot_row_prob = 0.10; hot_rows = 12; cols_per_op = 3; page_miss_prob = 0.05;
      stats_update_prob = 0.20; scan_run = 2;
    };
    {
      name = "auctionmark"; n_workers = 12; n_tables = 16; rows_per_table = 1200;
      row_lock_stripes = 48; ops_min = 5; ops_max = 14; write_prob = 0.40;
      hot_row_prob = 0.12; hot_rows = 10; cols_per_op = 3; page_miss_prob = 0.06;
      stats_update_prob = 0.25; scan_run = 1;
    };
    {
      name = "epinions"; n_workers = 12; n_tables = 5; rows_per_table = 2500;
      row_lock_stripes = 64; ops_min = 3; ops_max = 9; write_prob = 0.10;
      hot_row_prob = 0.15; hot_rows = 16; cols_per_op = 3; page_miss_prob = 0.03;
      stats_update_prob = 0.10; scan_run = 3;
    };
    {
      name = "sibench"; n_workers = 12; n_tables = 1; rows_per_table = 1000;
      row_lock_stripes = 32; ops_min = 1; ops_max = 2; write_prob = 0.10;
      hot_row_prob = 0.05; hot_rows = 8; cols_per_op = 2; page_miss_prob = 0.02;
      stats_update_prob = 0.02; scan_run = 30;
    };
    {
      name = "voter"; n_workers = 12; n_tables = 2; rows_per_table = 50;
      row_lock_stripes = 8; ops_min = 1; ops_max = 2; write_prob = 0.90;
      hot_row_prob = 0.60; hot_rows = 3; cols_per_op = 2; page_miss_prob = 0.01;
      stats_update_prob = 0.40; scan_run = 0;
    };
    {
      name = "hyadapt"; n_workers = 12; n_tables = 1; rows_per_table = 5000;
      row_lock_stripes = 64; ops_min = 2; ops_max = 4; write_prob = 0.05;
      hot_row_prob = 0.02; hot_rows = 8; cols_per_op = 10; page_miss_prob = 0.02;
      stats_update_prob = 0.02; scan_run = 50;
    };
  ]

let profile name = List.find_opt (fun p -> p.name = name) profiles

(* --- id layout --------------------------------------------------------- *)

(* Locks, in deadlock-free level order (a thread only acquires upward):
   trx-sys (0) < table latches < row stripes < buffer pool < log. *)
let lock_trx_sys = 0
let lock_table _p table = 1 + table
let lock_row_stripe p table stripe = 1 + p.n_tables + (table * p.row_lock_stripes) + stripe
let lock_buffer_pool p = 1 + p.n_tables + (p.n_tables * p.row_lock_stripes)
let lock_log p = lock_buffer_pool p + 1

(* Locations: global stats counters, per-table counters, the log buffer,
   then the rows (cols_per_op consecutive columns per row). *)
let n_global_stats = 4
let loc_global_stat i = i
let loc_table_stat _p table = n_global_stats + table
let loc_log_buffer p = n_global_stats + p.n_tables
let loc_row p table row col =
  n_global_stats + p.n_tables + 1 + ((table * p.rows_per_table) + row) * p.cols_per_op + col

(* --- transaction scripts ------------------------------------------------ *)

(* A worker's transaction is pre-rendered as an event list; the scheduler
   interleaves scripts one event at a time. *)
let pick_row prng p =
  if Prng.bernoulli prng ~p:p.hot_row_prob then Prng.int prng (Stdlib.min p.hot_rows p.rows_per_table)
  else Prng.int prng p.rows_per_table

let render_txn prng p tid =
  let acc = ref [] in
  let emit op = acc := Event.mk tid op :: !acc in
  (* begin: transaction-system bookkeeping.  Modern engines reach the
     trx-sys mutex only on the slow path; most transactions start through a
     lock-free fast path, so the global mutex does not serialize every
     transaction pair. *)
  let slow_path = Prng.bernoulli prng ~p:0.35 in
  if slow_path then begin
    emit (Event.Acquire lock_trx_sys);
    emit (Event.Read (loc_global_stat 0));
    emit (Event.Release lock_trx_sys)
  end;
  let n_ops = p.ops_min + Prng.int prng (p.ops_max - p.ops_min + 1) in
  let wrote = ref false in
  for _ = 1 to n_ops do
    let table = Prng.int prng p.n_tables in
    let row = pick_row prng p in
    let stripe = row mod p.row_lock_stripes in
    emit (Event.Acquire (lock_table p table));
    emit (Event.Acquire (lock_row_stripe p table stripe));
    if Prng.bernoulli prng ~p:p.page_miss_prob then begin
      emit (Event.Acquire (lock_buffer_pool p));
      emit (Event.Read (loc_row p table row 0));
      emit (Event.Release (lock_buffer_pool p))
    end;
    let write = Prng.bernoulli prng ~p:p.write_prob in
    if write then wrote := true;
    for col = 0 to p.cols_per_op - 1 do
      if write then emit (Event.Write (loc_row p table row col))
      else emit (Event.Read (loc_row p table row col))
    done;
    emit (Event.Release (lock_row_stripe p table stripe));
    emit (Event.Release (lock_table p table));
    (* MVCC consistent scan: reads take no row locks, racing with writers *)
    for _ = 1 to p.scan_run do
      let srow = Prng.int prng p.rows_per_table in
      emit (Event.Read (loc_row p table srow 0))
    done;
    (* hot per-operation server counters (handler_read/handler_write style),
       updated without synchronization — the highest-traffic benign races *)
    if Prng.bernoulli prng ~p:(0.5 *. p.stats_update_prob) then begin
      let counter = Prng.int prng n_global_stats in
      emit (Event.Read (loc_global_stat counter));
      emit (Event.Write (loc_global_stat counter))
    end
  done;
  (* commit: log append under the log mutex, then trx-sys on the slow path *)
  if !wrote then begin
    emit (Event.Acquire (lock_log p));
    emit (Event.Write (loc_log_buffer p));
    emit (Event.Release (lock_log p))
  end;
  if slow_path then begin
    emit (Event.Acquire lock_trx_sys);
    emit (Event.Release lock_trx_sys)
  end;
  (* unprotected statistics updates: MySQL-style benign races, done as
     read-modify-write bursts on a couple of counters *)
  if Prng.bernoulli prng ~p:p.stats_update_prob then begin
    let counter = Prng.int prng n_global_stats in
    emit (Event.Read (loc_global_stat counter));
    emit (Event.Write (loc_global_stat counter))
  end;
  if Prng.bernoulli prng ~p:p.stats_update_prob then begin
    let table = Prng.int prng p.n_tables in
    emit (Event.Read (loc_table_stat p table));
    emit (Event.Write (loc_table_stat p table))
  end;
  List.rev !acc

(* --- scheduler ----------------------------------------------------------- *)

type worker = {
  tid : int;
  mutable script : Event.t list;  (** remaining events of the current txn *)
  prng : Prng.t;                  (** per-worker stream: txn content *)
}

let generate p ~seed ~target_events =
  let b = Trace.Builder.create () in
  let main = Trace.Builder.fresh_thread b in
  let sched_prng = Prng.create ~seed in
  let workers =
    Array.init p.n_workers (fun _ ->
        let tid = Trace.Builder.fresh_thread b in
        { tid; script = []; prng = Prng.split sched_prng })
  in
  let n_locks = lock_log p + 1 in
  let holder = Array.make n_locks (-1) in
  Array.iter (fun w -> Trace.Builder.fork b main w.tid) workers;
  (* [stopping]: past the event target, workers finish their current
     transaction but do not start a new one (locks must drain). *)
  let stopping () = Trace.Builder.size b >= target_events in
  let can_emit w =
    match w.script with
    | [] -> not (stopping ())
    | e :: _ -> (
      match e.Event.op with
      | Event.Acquire l -> holder.(l) < 0
      | Event.Read _ | Event.Write _ | Event.Release _ | Event.Fork _ | Event.Join _
      | Event.Release_store _ | Event.Acquire_load _ -> true)
  in
  let advance w =
    match w.script with
    | [] ->
      (* render a fresh transaction; its first event is emitted on a later
         turn, after the usual blocked-acquire check *)
      w.script <- render_txn w.prng p w.tid
    | e :: rest ->
      (match e.Event.op with
      | Event.Acquire l -> holder.(l) <- w.tid
      | Event.Release l -> holder.(l) <- -1
      | Event.Read _ | Event.Write _ | Event.Fork _ | Event.Join _ | Event.Release_store _
      | Event.Acquire_load _ -> ());
      Trace.Builder.add b e;
      w.script <- rest
  in
  let all_drained () = Array.for_all (fun w -> w.script = []) workers in
  let continue = ref true in
  while !continue do
    if stopping () && all_drained () then continue := false
    else begin
      (* pick a random worker able to make progress; the lock-level order
         guarantees one exists whenever someone still has work *)
      let start = Prng.int sched_prng p.n_workers in
      let chosen = ref (-1) in
      let k = ref 0 in
      while !chosen < 0 && !k < p.n_workers do
        let w = workers.((start + !k) mod p.n_workers) in
        if can_emit w then chosen := (start + !k) mod p.n_workers;
        incr k
      done;
      match !chosen with
      | -1 -> continue := false (* stopping, everyone idle or blocked-empty *)
      | i -> advance workers.(i)
    end
  done;
  Array.iter (fun w -> Trace.Builder.join b main w.tid) workers;
  Trace.Builder.build_unchecked b
