(** Synthetic versions of the 26 benchmarks of the paper's offline (RAPID)
    experiments (§A.1) — IBM Contest, DaCapo, Java Grande and standalone
    programs.  The original execution traces are Java-program recordings we
    cannot reproduce; each generator here models the *synchronization idiom*
    that benchmark is known for (lock-protected counters, bounded buffers,
    fork/join divide-and-conquer, barrier phases, lock-order reversal, wrong
    lock protection, …), which is what the counted metrics of Figs 7–9
    depend on.

    All generators are deterministic in [seed] and produce well-formed
    traces whose size grows linearly with [scale] (roughly [40 × scale]
    events). *)

type benchmark = {
  name : string;
  description : string;
  generate : seed:int -> scale:int -> Ft_trace.Trace.t;
}

val all : benchmark list
(** The 26 benchmarks shown in the paper's figures, alphabetically: account,
    airlinetickets, array, boundedbuffer, bubblesort, bufwriter, clean,
    critical, cryptorsa, derby, ftpserver, jigsaw, linkedlist, lufact,
    luindex, lusearch, mergesort, moldyn, montecarlo, pingpong,
    producerconsumer, raytracer, readerswriters, sor, twostage, wronglock. *)

val extended : benchmark list
(** {!all} plus the four programs §A.1.1 analyses but the plots omit:
    elevator, hedc, philo, tsp. *)

val find : string -> benchmark option
(** Searches {!extended}. *)
